// Package frame defines the over-the-air frames exchanged in the
// simulated WLAN and their wire encoding.
//
// The design follows the layered-decoder idiom of gopacket: every frame
// satisfies the Layer interface (a type tag plus header and payload
// views), frames marshal to a compact binary wire format with a CRC-32
// frame check sequence, and Decode dispatches on the type byte. The MAC
// simulator itself passes frames by pointer, but the wire codec is what a
// trace reader or an AP implementation on a real transport would use, and
// it carries the control fields of Algorithms 1 and 2: wTOP-CSMA's `p`
// and TORA-CSMA's `(p0, j)` ride inside every ACK, exactly as the paper's
// AP "transmits p in the ACK packet".
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Type discriminates the frame kinds on the wire.
type Type uint8

// Frame type codes. The explicit values are part of the wire format.
const (
	TypeData   Type = 1
	TypeACK    Type = 2
	TypeBeacon Type = 3
	TypeRTS    Type = 4
	TypeCTS    Type = 5
)

// String returns the conventional name of the frame type.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "Data"
	case TypeACK:
		return "ACK"
	case TypeBeacon:
		return "Beacon"
	case TypeRTS:
		return "RTS"
	case TypeCTS:
		return "CTS"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Address identifies a station. The AP uses AddressAP.
type Address uint16

// AddressAP is the access point's well-known address.
const AddressAP Address = 0xFFFF

// String renders station addresses as "sta<n>" and the AP as "ap".
func (a Address) String() string {
	if a == AddressAP {
		return "ap"
	}
	return fmt.Sprintf("sta%d", uint16(a))
}

// Layer is the common view over every frame kind, mirroring gopacket's
// Layer: a type tag, the encoded header bytes, and the payload bytes.
type Layer interface {
	// FrameType returns the wire type tag.
	FrameType() Type
	// AppendHeader appends the frame's header encoding to dst and
	// returns the extended slice.
	AppendHeader(dst []byte) []byte
	// PayloadBits returns the simulated payload size in bits. Simulated
	// payloads are sized, not materialised: an 8000-bit payload is
	// carried as a length, keeping million-frame simulations cheap.
	PayloadBits() int
}

// Errors returned by the decoder.
var (
	ErrTruncated = errors.New("frame: truncated")
	ErrBadFCS    = errors.New("frame: frame check sequence mismatch")
	ErrBadType   = errors.New("frame: unknown frame type")
	ErrBadField  = errors.New("frame: field out of range")
)

// Data is an uplink data frame from a station to the AP.
type Data struct {
	Source      Address
	Destination Address
	Sequence    uint16
	// Retry counts how many transmission attempts this frame has made
	// (0 for the first attempt), mirroring the 802.11 retry bit but kept
	// as a counter for simulator statistics.
	Retry uint8
	// Bits is the payload size in bits.
	Bits int
}

// FrameType implements Layer.
func (d *Data) FrameType() Type { return TypeData }

// PayloadBits implements Layer.
func (d *Data) PayloadBits() int { return d.Bits }

// AppendHeader implements Layer. Layout (big endian):
//
//	type(1) src(2) dst(2) seq(2) retry(1) bits(4)
func (d *Data) AppendHeader(dst []byte) []byte {
	dst = append(dst, byte(TypeData))
	dst = binary.BigEndian.AppendUint16(dst, uint16(d.Source))
	dst = binary.BigEndian.AppendUint16(dst, uint16(d.Destination))
	dst = binary.BigEndian.AppendUint16(dst, d.Sequence)
	dst = append(dst, d.Retry)
	dst = binary.BigEndian.AppendUint32(dst, uint32(d.Bits))
	return dst
}

// Control carries the AP's broadcast tuning state. It is embedded in
// every ACK (and Beacon) so that stations track the controller without a
// dedicated management exchange, as in Algorithms 1 and 2.
type Control struct {
	// Scheme tags which controller produced the values.
	Scheme ControlScheme
	// P is the wTOP-CSMA control variable (attempt probability before
	// weight mapping). Quantised to 1/65535 steps on the wire.
	P float64
	// P0 is the TORA-CSMA reset probability, same quantisation.
	P0 float64
	// Stage is TORA-CSMA's reset stage j.
	Stage uint8
}

// ControlScheme enumerates the controllers that can own the broadcast.
type ControlScheme uint8

// Control scheme codes (wire format).
const (
	ControlNone ControlScheme = 0
	ControlWTOP ControlScheme = 1
	ControlTORA ControlScheme = 2
)

// String names the scheme.
func (s ControlScheme) String() string {
	switch s {
	case ControlNone:
		return "none"
	case ControlWTOP:
		return "wTOP-CSMA"
	case ControlTORA:
		return "TORA-CSMA"
	default:
		return fmt.Sprintf("ControlScheme(%d)", uint8(s))
	}
}

func quantise(p float64) (uint16, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: probability %v outside [0,1]", ErrBadField, p)
	}
	return uint16(math.Round(p * 65535)), nil
}

func dequantise(v uint16) float64 { return float64(v) / 65535 }

// ACK is the AP's acknowledgement of a data frame. Per the paper, the
// ACK also broadcasts the controller state.
type ACK struct {
	// Receiver is the station whose data frame is being acknowledged.
	Receiver Address
	// Sequence echoes the acknowledged frame's sequence number.
	Sequence uint16
	// Control is the piggybacked tuning broadcast.
	Control Control
}

// FrameType implements Layer.
func (a *ACK) FrameType() Type { return TypeACK }

// PayloadBits implements Layer; ACKs carry no payload.
func (a *ACK) PayloadBits() int { return 0 }

// AppendHeader implements Layer. Layout:
//
//	type(1) rx(2) seq(2) scheme(1) p(2) p0(2) stage(1)
func (a *ACK) AppendHeader(dst []byte) []byte {
	dst = append(dst, byte(TypeACK))
	dst = binary.BigEndian.AppendUint16(dst, uint16(a.Receiver))
	dst = binary.BigEndian.AppendUint16(dst, a.Sequence)
	dst = append(dst, byte(a.Control.Scheme))
	p, _ := quantise(clamp01(a.Control.P))
	p0, _ := quantise(clamp01(a.Control.P0))
	dst = binary.BigEndian.AppendUint16(dst, p)
	dst = binary.BigEndian.AppendUint16(dst, p0)
	dst = append(dst, a.Control.Stage)
	return dst
}

// Beacon is a periodic AP broadcast carrying the same control block; the
// paper notes wTOP-CSMA "can be modified to use beacon frames to send the
// parameters" so stations need not decode every ACK.
type Beacon struct {
	Sequence uint16
	Control  Control
}

// FrameType implements Layer.
func (b *Beacon) FrameType() Type { return TypeBeacon }

// PayloadBits implements Layer; beacons carry no simulated payload.
func (b *Beacon) PayloadBits() int { return 0 }

// AppendHeader implements Layer. Layout:
//
//	type(1) seq(2) scheme(1) p(2) p0(2) stage(1)
func (b *Beacon) AppendHeader(dst []byte) []byte {
	dst = append(dst, byte(TypeBeacon))
	dst = binary.BigEndian.AppendUint16(dst, b.Sequence)
	dst = append(dst, byte(b.Control.Scheme))
	p, _ := quantise(clamp01(b.Control.P))
	p0, _ := quantise(clamp01(b.Control.P0))
	dst = binary.BigEndian.AppendUint16(dst, p)
	dst = binary.BigEndian.AppendUint16(dst, p0)
	dst = append(dst, b.Control.Stage)
	return dst
}

// RTS is a station's request-to-send, announcing the intended medium
// reservation in microseconds (the 802.11 Duration/ID field).
type RTS struct {
	Source   Address
	Duration uint16
}

// FrameType implements Layer.
func (r *RTS) FrameType() Type { return TypeRTS }

// PayloadBits implements Layer; control frames carry no payload.
func (r *RTS) PayloadBits() int { return 0 }

// AppendHeader implements Layer. Layout: type(1) src(2) dur(2).
func (r *RTS) AppendHeader(dst []byte) []byte {
	dst = append(dst, byte(TypeRTS))
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.Source))
	dst = binary.BigEndian.AppendUint16(dst, r.Duration)
	return dst
}

// CTS is the AP's clear-to-send. Every station that decodes it arms its
// NAV for Duration microseconds — the virtual carrier sense that silences
// hidden nodes.
type CTS struct {
	Receiver Address
	Duration uint16
}

// FrameType implements Layer.
func (c *CTS) FrameType() Type { return TypeCTS }

// PayloadBits implements Layer.
func (c *CTS) PayloadBits() int { return 0 }

// AppendHeader implements Layer. Layout: type(1) rx(2) dur(2).
func (c *CTS) AppendHeader(dst []byte) []byte {
	dst = append(dst, byte(TypeCTS))
	dst = binary.BigEndian.AppendUint16(dst, uint16(c.Receiver))
	dst = binary.BigEndian.AppendUint16(dst, c.Duration)
	return dst
}

func clamp01(p float64) float64 {
	switch {
	case math.IsNaN(p), p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// Marshal encodes a frame: header bytes followed by a CRC-32 (IEEE) frame
// check sequence over the header.
func Marshal(l Layer) []byte {
	buf := l.AppendHeader(nil)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// Decode parses a wire buffer produced by Marshal and returns the typed
// frame. It verifies the FCS before interpreting any field.
func Decode(buf []byte) (Layer, error) {
	if len(buf) < 5 { // type byte + FCS
		return nil, ErrTruncated
	}
	body, fcs := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != fcs {
		return nil, ErrBadFCS
	}
	switch Type(body[0]) {
	case TypeData:
		if len(body) != 12 {
			return nil, fmt.Errorf("%w: data header %d bytes, want 12", ErrTruncated, len(body))
		}
		return &Data{
			Source:      Address(binary.BigEndian.Uint16(body[1:3])),
			Destination: Address(binary.BigEndian.Uint16(body[3:5])),
			Sequence:    binary.BigEndian.Uint16(body[5:7]),
			Retry:       body[7],
			Bits:        int(binary.BigEndian.Uint32(body[8:12])),
		}, nil
	case TypeACK:
		if len(body) != 11 {
			return nil, fmt.Errorf("%w: ack header %d bytes, want 11", ErrTruncated, len(body))
		}
		return &ACK{
			Receiver: Address(binary.BigEndian.Uint16(body[1:3])),
			Sequence: binary.BigEndian.Uint16(body[3:5]),
			Control: Control{
				Scheme: ControlScheme(body[5]),
				P:      dequantise(binary.BigEndian.Uint16(body[6:8])),
				P0:     dequantise(binary.BigEndian.Uint16(body[8:10])),
				Stage:  body[10],
			},
		}, nil
	case TypeBeacon:
		if len(body) != 9 {
			return nil, fmt.Errorf("%w: beacon header %d bytes, want 9", ErrTruncated, len(body))
		}
		return &Beacon{
			Sequence: binary.BigEndian.Uint16(body[1:3]),
			Control: Control{
				Scheme: ControlScheme(body[3]),
				P:      dequantise(binary.BigEndian.Uint16(body[4:6])),
				P0:     dequantise(binary.BigEndian.Uint16(body[6:8])),
				Stage:  body[8],
			},
		}, nil
	case TypeRTS:
		if len(body) != 5 {
			return nil, fmt.Errorf("%w: rts header %d bytes, want 5", ErrTruncated, len(body))
		}
		return &RTS{
			Source:   Address(binary.BigEndian.Uint16(body[1:3])),
			Duration: binary.BigEndian.Uint16(body[3:5]),
		}, nil
	case TypeCTS:
		if len(body) != 5 {
			return nil, fmt.Errorf("%w: cts header %d bytes, want 5", ErrTruncated, len(body))
		}
		return &CTS{
			Receiver: Address(binary.BigEndian.Uint16(body[1:3])),
			Duration: binary.BigEndian.Uint16(body[3:5]),
		}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, body[0])
	}
}
