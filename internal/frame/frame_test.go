package frame

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDataRoundTrip(t *testing.T) {
	d := &Data{Source: 7, Destination: AddressAP, Sequence: 4242, Retry: 3, Bits: 8000}
	buf := Marshal(d)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	back, ok := got.(*Data)
	if !ok {
		t.Fatalf("decoded %T, want *Data", got)
	}
	if *back != *d {
		t.Errorf("round trip mismatch: %+v vs %+v", back, d)
	}
	if back.FrameType() != TypeData || back.PayloadBits() != 8000 {
		t.Error("Layer views wrong")
	}
}

func TestACKRoundTrip(t *testing.T) {
	a := &ACK{
		Receiver: 12,
		Sequence: 99,
		Control:  Control{Scheme: ControlWTOP, P: 0.03125, P0: 0.5, Stage: 4},
	}
	got, err := Decode(Marshal(a))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	back := got.(*ACK)
	if back.Receiver != 12 || back.Sequence != 99 {
		t.Errorf("addressing mismatch: %+v", back)
	}
	if back.Control.Scheme != ControlWTOP || back.Control.Stage != 4 {
		t.Errorf("control mismatch: %+v", back.Control)
	}
	// Probabilities survive within quantisation error (1/65535).
	if math.Abs(back.Control.P-0.03125) > 1.0/65535 {
		t.Errorf("P = %v, want ≈ 0.03125", back.Control.P)
	}
	if math.Abs(back.Control.P0-0.5) > 1.0/65535 {
		t.Errorf("P0 = %v, want ≈ 0.5", back.Control.P0)
	}
	if back.PayloadBits() != 0 {
		t.Error("ACK has payload bits")
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	b := &Beacon{Sequence: 1, Control: Control{Scheme: ControlTORA, P0: 0.75, Stage: 2}}
	got, err := Decode(Marshal(b))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	back := got.(*Beacon)
	if back.Sequence != 1 || back.Control.Scheme != ControlTORA || back.Control.Stage != 2 {
		t.Errorf("beacon mismatch: %+v", back)
	}
	if math.Abs(back.Control.P0-0.75) > 1.0/65535 {
		t.Errorf("P0 = %v", back.Control.P0)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	buf := Marshal(&Data{Source: 1, Destination: AddressAP, Bits: 100})
	// Flip one bit in every byte position; FCS must catch all of them.
	for i := range buf {
		corrupt := append([]byte(nil), buf...)
		corrupt[i] ^= 0x10
		if _, err := Decode(corrupt); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	// Unknown type with a valid FCS.
	body := []byte{0x7F, 0, 0}
	buf := Marshal(layerBytes(body))
	if _, err := Decode(buf); !errors.Is(err, ErrBadType) {
		t.Errorf("unknown type: %v", err)
	}
	// Valid FCS but truncated body for the claimed type.
	buf = Marshal(layerBytes([]byte{byte(TypeData), 0, 0}))
	if _, err := Decode(buf); !errors.Is(err, ErrTruncated) {
		t.Errorf("short data body: %v", err)
	}
}

// layerBytes adapts a raw byte slice to the Layer interface for
// constructing malformed-but-checksummed test frames.
type layerBytes []byte

func (l layerBytes) FrameType() Type                { return Type(l[0]) }
func (l layerBytes) AppendHeader(dst []byte) []byte { return append(dst, l...) }
func (l layerBytes) PayloadBits() int               { return 0 }

func TestControlClamping(t *testing.T) {
	a := &ACK{Control: Control{Scheme: ControlWTOP, P: 1.5, P0: -0.2}}
	got, err := Decode(Marshal(a))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	back := got.(*ACK)
	if back.Control.P != 1 {
		t.Errorf("P clamped to %v, want 1", back.Control.P)
	}
	if back.Control.P0 != 0 {
		t.Errorf("P0 clamped to %v, want 0", back.Control.P0)
	}
	nan := &ACK{Control: Control{P: math.NaN()}}
	got, err = Decode(Marshal(nan))
	if err != nil {
		t.Fatalf("Decode NaN: %v", err)
	}
	if got.(*ACK).Control.P != 0 {
		t.Error("NaN P not clamped to 0")
	}
}

func TestDataRoundTripProperty(t *testing.T) {
	prop := func(src, dst, seq uint16, retry uint8, bits uint32) bool {
		d := &Data{
			Source:      Address(src),
			Destination: Address(dst),
			Sequence:    seq,
			Retry:       retry,
			Bits:        int(bits % (1 << 24)),
		}
		got, err := Decode(Marshal(d))
		if err != nil {
			return false
		}
		back, ok := got.(*Data)
		return ok && *back == *d
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestACKControlQuantisationProperty(t *testing.T) {
	prop := func(praw, p0raw uint16, stage uint8) bool {
		p := float64(praw) / 65535
		p0 := float64(p0raw) / 65535
		a := &ACK{Control: Control{Scheme: ControlTORA, P: p, P0: p0, Stage: stage}}
		got, err := Decode(Marshal(a))
		if err != nil {
			return false
		}
		back := got.(*ACK)
		// Exact grid points survive exactly.
		return back.Control.P == p && back.Control.P0 == p0 && back.Control.Stage == stage
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if TypeData.String() != "Data" || TypeACK.String() != "ACK" || TypeBeacon.String() != "Beacon" {
		t.Error("type names wrong")
	}
	if Type(9).String() != "Type(9)" {
		t.Errorf("unknown type: %s", Type(9))
	}
	if AddressAP.String() != "ap" || Address(3).String() != "sta3" {
		t.Error("address names wrong")
	}
	if ControlWTOP.String() != "wTOP-CSMA" || ControlTORA.String() != "TORA-CSMA" || ControlNone.String() != "none" {
		t.Error("scheme names wrong")
	}
	if ControlScheme(7).String() != "ControlScheme(7)" {
		t.Error("unknown scheme name wrong")
	}
}
