package scheme

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mac"
)

// Build must construct the right policy type and controller for every
// named scheme, one policy per station.
func TestBuildAllSchemes(t *testing.T) {
	const n = 5
	cases := []struct {
		scheme        string
		wantPolicy    string
		hasController bool
	}{
		{DCF, "*mac.StandardDCF", false},
		{IdleSense, "*mac.IdleSense", false},
		{WTOP, "*mac.PPersistent", true},
		{TORA, "*mac.RandomReset", true},
	}
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			policies, controller, err := Build(tc.scheme, nil, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(policies) != n {
				t.Fatalf("%d policies for %d stations", len(policies), n)
			}
			for i, p := range policies {
				switch tc.wantPolicy {
				case "*mac.StandardDCF":
					if _, ok := p.(*mac.StandardDCF); !ok {
						t.Errorf("policy %d is %T", i, p)
					}
				case "*mac.IdleSense":
					if _, ok := p.(*mac.IdleSense); !ok {
						t.Errorf("policy %d is %T", i, p)
					}
				case "*mac.PPersistent":
					if _, ok := p.(*mac.PPersistent); !ok {
						t.Errorf("policy %d is %T", i, p)
					}
				case "*mac.RandomReset":
					if _, ok := p.(*mac.RandomReset); !ok {
						t.Errorf("policy %d is %T", i, p)
					}
				}
			}
			if tc.hasController != (controller != nil) {
				t.Errorf("controller = %v, want present=%v", controller, tc.hasController)
			}
		})
	}
	if _, c, err := Build(WTOP, nil, 2); err != nil {
		t.Fatal(err)
	} else if _, ok := c.(*core.WTOP); !ok {
		t.Errorf("wTOP controller is %T", c)
	}
	if _, c, err := Build(TORA, nil, 2); err != nil {
		t.Fatal(err)
	} else if _, ok := c.(*core.TORA); !ok {
		t.Errorf("TORA controller is %T", c)
	}
}

// Non-nil weights must reach the per-station p-persistent policies in
// order; nil weights mean unit weights.
func TestBuildWeightPropagation(t *testing.T) {
	weights := []float64{1, 2, 3.5}
	policies, _, err := Build(WTOP, weights, len(weights))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range policies {
		pp, ok := p.(*mac.PPersistent)
		if !ok {
			t.Fatalf("policy %d is %T", i, p)
		}
		if pp.Weight != weights[i] {
			t.Errorf("policy %d weight %v, want %v", i, pp.Weight, weights[i])
		}
	}
	unit, _, err := Build(WTOP, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range unit {
		if w := p.(*mac.PPersistent).Weight; w != 1 {
			t.Errorf("nil-weight policy %d weight %v, want 1", i, w)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, err := Build("CSMA/CD", nil, 4); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Errorf("unknown scheme: %v", err)
	}
	// The error must name the valid schemes so a typo is self-repairing.
	if _, _, err := Build("802.11b", nil, 4); err == nil || !strings.Contains(err.Error(), WTOP) {
		t.Errorf("error does not list valid schemes: %v", err)
	}
	if _, _, err := Build(WTOP, []float64{1, 2}, 4); err == nil {
		t.Error("bad weight length accepted")
	}
	if _, _, err := Build(DCF, []float64{1, 1, 1, 1}, 4); err == nil {
		t.Error("weights accepted for an unweighted scheme")
	}
	if _, _, err := Build(TORA, []float64{1, 1}, 2); err == nil {
		t.Error("weights accepted for TORA")
	}
	// Zero stations is degenerate but must not panic.
	policies, _, err := Build(DCF, nil, 0)
	if err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if len(policies) != 0 {
		t.Errorf("n=0 built %d policies", len(policies))
	}
}
