// Package scheme is the single scheme→policy mapping in the repository:
// it names the paper's four channel-access schemes and constructs their
// per-station contention policies plus the AP-side controller with the
// paper's parameters. The wlan facade, the experiment harness and the
// scenario runner all build through it, so a scheme behaves identically
// wherever it is invoked. It is a leaf package (core/mac/model only), so
// engine-facing consumers do not drag in the declarative scenario layer.
package scheme

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mac"
	"repro/internal/model"
)

// The paper's four schemes, by their reporting names.
const (
	DCF       = "802.11"
	IdleSense = "IdleSense"
	WTOP      = "wTOP-CSMA"
	TORA      = "TORA-CSMA"
)

// Build constructs one contention policy per station plus the AP
// controller for a named scheme. weights may be nil (unit weights);
// non-nil weights require wTOP-CSMA, the only weighted scheme.
func Build(scheme string, weights []float64, n int) ([]mac.Policy, core.Controller, error) {
	if weights != nil && len(weights) != n {
		return nil, nil, fmt.Errorf("scheme: %d weights for %d stations", len(weights), n)
	}
	if weights != nil && scheme != WTOP {
		return nil, nil, fmt.Errorf("scheme: weights require the %s scheme", WTOP)
	}
	phy := model.PaperPHY()
	back := model.PaperBackoff()
	policies := make([]mac.Policy, n)
	var controller core.Controller
	switch scheme {
	case DCF:
		for i := range policies {
			policies[i] = mac.NewStandardDCF(back.CWMin, back.CWMax())
		}
	case IdleSense:
		for i := range policies {
			policies[i] = mac.NewIdleSense(mac.IdleSenseConfig{})
		}
	case WTOP:
		for i := range policies {
			w := 1.0
			if weights != nil {
				w = weights[i]
			}
			policies[i] = mac.NewPPersistent(w, 0.1)
		}
		controller = core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate})
	case TORA:
		for i := range policies {
			policies[i] = mac.NewRandomReset(back.CWMin, back.M, 0, 1)
		}
		controller = core.NewTORA(core.TORAConfig{M: back.M, Scale: phy.BitRate})
	default:
		return nil, nil, fmt.Errorf("scheme: unknown scheme %q (want %s, %s, %s or %s)",
			scheme, DCF, IdleSense, WTOP, TORA)
	}
	return policies, controller, nil
}
