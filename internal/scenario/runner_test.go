package scenario

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testSuite() *Suite {
	return &Suite{
		Name: "runner-test",
		Scenarios: []Spec{
			{
				Name:     "saturated-dcf",
				Topology: TopologySpec{Kind: TopoConnected, N: 8},
				Duration: Duration(2 * time.Second),
				Warmup:   durp(Duration(time.Second)),
				Seeds:    3,
			},
			{
				Name:     "hidden-tora",
				Scheme:   SchemeTORA,
				Topology: TopologySpec{Kind: TopoDisc, N: 10, Radius: 16},
				Duration: Duration(2 * time.Second),
				Warmup:   durp(Duration(time.Second)),
				Seeds:    3,
			},
			{
				Name:     "poisson-latency",
				Topology: TopologySpec{Kind: TopoConnected, N: 6},
				Traffic:  []TrafficSpec{{Model: "poisson", Rate: 120}},
				Duration: Duration(3 * time.Second),
				Warmup:   durp(Duration(time.Second)),
				Seeds:    2,
			},
			{
				Name:     "churn-wtop",
				Scheme:   SchemeWTOP,
				Topology: TopologySpec{Kind: TopoConnected, N: 12},
				Churn:    []ChurnStep{{At: 0, Active: 4}, {At: Duration(time.Second), Active: 12}},
				Duration: Duration(2 * time.Second),
				Warmup:   durp(Duration(time.Second)),
				Seeds:    2,
			},
		},
	}
}

// The acceptance property of the runner: the aggregate is bit-identical
// whatever the Parallelism, because replication seeding is pure and
// aggregation order is fixed.
func TestRunnerParallelismInvariance(t *testing.T) {
	su := testSuite()
	if err := su.withDefaults(); err != nil {
		t.Fatal(err)
	}
	serial := Runner{Parallelism: 1}
	parallel := Runner{Parallelism: runtime.GOMAXPROCS(0)}
	a, err := serial.RunSuite(su)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.RunSuite(su)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := MarshalSummaries(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := MarshalSummaries(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("Parallelism 1 vs %d summaries differ:\n%s\nvs\n%s",
			runtime.GOMAXPROCS(0), aj, bj)
	}
}

// Sanity of the summary content across scenario types.
func TestRunnerSummaryContent(t *testing.T) {
	su := testSuite()
	if err := su.withDefaults(); err != nil {
		t.Fatal(err)
	}
	r := Runner{}
	sums, err := r.RunSuite(su)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(su.Scenarios) {
		t.Fatalf("%d summaries for %d scenarios", len(sums), len(su.Scenarios))
	}
	byName := map[string]*Summary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	sat := byName["saturated-dcf"]
	if sat.Replications != 3 || sat.Stations != 8 {
		t.Errorf("saturated summary shape: %+v", sat)
	}
	if sat.ThroughputMbps.Mean <= 0 || sat.Successes == 0 {
		t.Errorf("saturated run made no progress: %+v", sat)
	}
	if sat.PacketsArrived != 0 {
		t.Errorf("saturated run counted arrivals: %d", sat.PacketsArrived)
	}
	if sat.Latency.Packets != sat.Successes {
		t.Errorf("latency packets %d != successes %d", sat.Latency.Packets, sat.Successes)
	}
	if sat.HiddenPairs.Mean != 0 {
		t.Errorf("connected topology reported hidden pairs: %v", sat.HiddenPairs.Mean)
	}

	hid := byName["hidden-tora"]
	if hid.HiddenPairs.Mean <= 0 {
		t.Errorf("16 m disc with 10 stations should have hidden pairs, got %v", hid.HiddenPairs.Mean)
	}
	// Per-replication topologies differ (topology seed 0), so the
	// hidden-pair count should vary across the three seeds.
	if hid.HiddenPairs.StdDev == 0 {
		t.Logf("note: hidden-pair count identical across seeds (possible but unlikely)")
	}

	poi := byName["poisson-latency"]
	if poi.PacketsArrived == 0 || poi.Latency.Packets == 0 {
		t.Errorf("poisson run recorded no arrivals/latency: %+v", poi)
	}
	if poi.Latency.P99Ms < poi.Latency.P50Ms || poi.Latency.P50Ms <= 0 {
		t.Errorf("implausible latency percentiles: %+v", poi.Latency)
	}

	ch := byName["churn-wtop"]
	if ch.Successes == 0 {
		t.Errorf("churn run made no progress")
	}
}

// Capture scenarios must report frame counts and a short-term fairness
// index, and stay parallelism-invariant too.
func TestRunnerCapture(t *testing.T) {
	sp := &Spec{
		Name:     "cap",
		Topology: TopologySpec{Kind: TopoConnected, N: 5},
		Duration: Duration(2 * time.Second),
		Capture:  true,
		Seeds:    2,
	}
	r := Runner{}
	sum, err := r.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Capture == nil {
		t.Fatal("capture stats missing")
	}
	if sum.Capture.Frames == 0 {
		t.Error("no frames captured")
	}
	if j := sum.Capture.ShortTermJain.Mean; j <= 0 || j > 1 {
		t.Errorf("short-term Jain %v outside (0, 1]", j)
	}
	if sp.CaptureWindow != 15 {
		t.Errorf("capture window default = %d, want 3·N = 15", sp.CaptureWindow)
	}
}

// Runner errors must be deterministic and name the failing scenario.
func TestRunnerReportsSpecErrors(t *testing.T) {
	r := Runner{}
	if _, err := r.Run(&Spec{Name: "bad", Topology: TopologySpec{Kind: "torus", N: 3}}); err == nil {
		t.Error("invalid spec did not error")
	}
}

// After the first replication error, the batch must fail fast — the
// remaining jobs drain without simulating — while the reported error
// stays the deterministic lowest-job-index one: jobs are dispatched in
// index order, so everything below the erroring index already started
// and only higher-indexed (irrelevant) jobs are skipped.
func TestRunBatchFailsFast(t *testing.T) {
	const seeds = 2000
	specs := []*Spec{{
		Name:     "failfast",
		Topology: TopologySpec{Kind: TopoConnected, N: 2},
		Duration: Duration(time.Second),
		Seeds:    seeds,
	}}
	var simulated atomic.Int64
	r := Runner{
		Parallelism: 8,
		runRep: func(sp *Spec, rep int) (*replication, error) {
			if rep == 0 {
				return nil, errors.New("boom")
			}
			simulated.Add(1)
			time.Sleep(100 * time.Microsecond)
			return nil, nil
		},
	}
	_, err := r.RunBatch(specs)
	if err == nil {
		t.Fatal("batch with a failing replication returned nil error")
	}
	// Determinism: always the lowest job index (scenario 0, replication
	// 0), regardless of scheduling.
	want := `scenario "failfast" replication 0: boom`
	if err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
	// Fail fast: the vast majority of the batch was drained, not run.
	// Workers that already picked up a job may finish it, so allow a
	// small scheduling-dependent margin.
	if n := simulated.Load(); n > seeds/10 {
		t.Errorf("%d of %d replications simulated after the failure — no fail-fast", n, seeds)
	}
}

// The lowest-index error wins even when a later job errors first in
// wall-clock time.
func TestRunBatchKeepsLowestIndexError(t *testing.T) {
	specs := []*Spec{{
		Name:     "order",
		Topology: TopologySpec{Kind: TopoConnected, N: 2},
		Duration: Duration(time.Second),
		Seeds:    8,
	}}
	r := Runner{
		Parallelism: 4,
		runRep: func(sp *Spec, rep int) (*replication, error) {
			switch rep {
			case 0:
				time.Sleep(5 * time.Millisecond) // errors last in wall-clock time
				return nil, errors.New("slow low-index failure")
			case 5:
				return nil, errors.New("fast high-index failure")
			}
			return nil, nil
		},
	}
	_, err := r.RunBatch(specs)
	if err == nil || !strings.Contains(err.Error(), "replication 0") {
		t.Errorf("reported %v, want the replication-0 error", err)
	}
}

// A single replication re-run must be bit-identical to itself (the
// determinism base case the invariance test builds on).
func TestRunnerDeterminism(t *testing.T) {
	sp := &Spec{
		Name:     "det",
		Scheme:   SchemeTORA,
		Topology: TopologySpec{Kind: TopoDisc, N: 8, Radius: 16},
		Traffic:  []TrafficSpec{{Model: "poisson", Rate: 200}},
		Duration: Duration(2 * time.Second),
		Seeds:    2,
	}
	r := Runner{}
	a, err := r.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := MarshalSummaries([]*Summary{a})
	bj, _ := MarshalSummaries([]*Summary{b})
	if !bytes.Equal(aj, bj) {
		t.Errorf("same spec diverged across runs:\n%s\nvs\n%s", aj, bj)
	}
}
