package scenario

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testSuite() *Suite {
	return &Suite{
		Name: "runner-test",
		Scenarios: []Spec{
			{
				Name:     "saturated-dcf",
				Topology: TopologySpec{Kind: TopoConnected, N: 8},
				Duration: Duration(2 * time.Second),
				Warmup:   durp(Duration(time.Second)),
				Seeds:    3,
			},
			{
				Name:     "hidden-tora",
				Scheme:   SchemeTORA,
				Topology: TopologySpec{Kind: TopoDisc, N: 10, Radius: 16},
				Duration: Duration(2 * time.Second),
				Warmup:   durp(Duration(time.Second)),
				Seeds:    3,
			},
			{
				Name:     "poisson-latency",
				Topology: TopologySpec{Kind: TopoConnected, N: 6},
				Traffic:  []TrafficSpec{{Model: "poisson", Rate: 120}},
				Duration: Duration(3 * time.Second),
				Warmup:   durp(Duration(time.Second)),
				Seeds:    2,
			},
			{
				Name:     "churn-wtop",
				Scheme:   SchemeWTOP,
				Topology: TopologySpec{Kind: TopoConnected, N: 12},
				Churn:    []ChurnStep{{At: 0, Active: 4}, {At: Duration(time.Second), Active: 12}},
				Duration: Duration(2 * time.Second),
				Warmup:   durp(Duration(time.Second)),
				Seeds:    2,
			},
		},
	}
}

// The acceptance property of the runner: the aggregate is bit-identical
// whatever the Parallelism, because replication seeding is pure and
// aggregation order is fixed.
func TestRunnerParallelismInvariance(t *testing.T) {
	su := testSuite()
	if err := su.withDefaults(); err != nil {
		t.Fatal(err)
	}
	serial := Runner{Parallelism: 1}
	parallel := Runner{Parallelism: runtime.GOMAXPROCS(0)}
	a, err := serial.RunSuite(context.Background(), su)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.RunSuite(context.Background(), su)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := MarshalSummaries(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := MarshalSummaries(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("Parallelism 1 vs %d summaries differ:\n%s\nvs\n%s",
			runtime.GOMAXPROCS(0), aj, bj)
	}
}

// Sanity of the summary content across scenario types.
func TestRunnerSummaryContent(t *testing.T) {
	su := testSuite()
	if err := su.withDefaults(); err != nil {
		t.Fatal(err)
	}
	r := Runner{}
	sums, err := r.RunSuite(context.Background(), su)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(su.Scenarios) {
		t.Fatalf("%d summaries for %d scenarios", len(sums), len(su.Scenarios))
	}
	byName := map[string]*Summary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	sat := byName["saturated-dcf"]
	if sat.Replications != 3 || sat.Stations != 8 {
		t.Errorf("saturated summary shape: %+v", sat)
	}
	if sat.ThroughputMbps.Mean <= 0 || sat.Successes == 0 {
		t.Errorf("saturated run made no progress: %+v", sat)
	}
	if sat.PacketsArrived != 0 {
		t.Errorf("saturated run counted arrivals: %d", sat.PacketsArrived)
	}
	if sat.Latency.Packets != sat.Successes {
		t.Errorf("latency packets %d != successes %d", sat.Latency.Packets, sat.Successes)
	}
	if sat.HiddenPairs.Mean != 0 {
		t.Errorf("connected topology reported hidden pairs: %v", sat.HiddenPairs.Mean)
	}

	hid := byName["hidden-tora"]
	if hid.HiddenPairs.Mean <= 0 {
		t.Errorf("16 m disc with 10 stations should have hidden pairs, got %v", hid.HiddenPairs.Mean)
	}
	// Per-replication topologies differ (topology seed 0), so the
	// hidden-pair count should vary across the three seeds.
	if hid.HiddenPairs.StdDev == 0 {
		t.Logf("note: hidden-pair count identical across seeds (possible but unlikely)")
	}

	poi := byName["poisson-latency"]
	if poi.PacketsArrived == 0 || poi.Latency.Packets == 0 {
		t.Errorf("poisson run recorded no arrivals/latency: %+v", poi)
	}
	if poi.Latency.P99Ms < poi.Latency.P50Ms || poi.Latency.P50Ms <= 0 {
		t.Errorf("implausible latency percentiles: %+v", poi.Latency)
	}

	ch := byName["churn-wtop"]
	if ch.Successes == 0 {
		t.Errorf("churn run made no progress")
	}
}

// Capture scenarios must report frame counts and a short-term fairness
// index, and stay parallelism-invariant too.
func TestRunnerCapture(t *testing.T) {
	sp := &Spec{
		Name:     "cap",
		Topology: TopologySpec{Kind: TopoConnected, N: 5},
		Duration: Duration(2 * time.Second),
		Capture:  true,
		Seeds:    2,
	}
	r := Runner{}
	sum, err := r.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Capture == nil {
		t.Fatal("capture stats missing")
	}
	if sum.Capture.Frames == 0 {
		t.Error("no frames captured")
	}
	if j := sum.Capture.ShortTermJain.Mean; j <= 0 || j > 1 {
		t.Errorf("short-term Jain %v outside (0, 1]", j)
	}
	if sp.CaptureWindow != 15 {
		t.Errorf("capture window default = %d, want 3·N = 15", sp.CaptureWindow)
	}
}

// Runner errors must be deterministic and name the failing scenario.
func TestRunnerReportsSpecErrors(t *testing.T) {
	r := Runner{}
	if _, err := r.Run(context.Background(), &Spec{Name: "bad", Topology: TopologySpec{Kind: "torus", N: 3}}); err == nil {
		t.Error("invalid spec did not error")
	}
}

// After the first replication error, the batch must fail fast — the
// remaining jobs drain without simulating — while the reported error
// stays the deterministic lowest-job-index one: jobs are dispatched in
// index order, so everything below the erroring index already started
// and only higher-indexed (irrelevant) jobs are skipped.
func TestRunBatchFailsFast(t *testing.T) {
	const seeds = 2000
	specs := []*Spec{{
		Name:     "failfast",
		Topology: TopologySpec{Kind: TopoConnected, N: 2},
		Duration: Duration(time.Second),
		Seeds:    seeds,
	}}
	var simulated atomic.Int64
	r := Runner{
		Parallelism: 8,
		runRep: func(sp *Spec, rep int) (*replication, error) {
			if rep == 0 {
				return nil, errors.New("boom")
			}
			simulated.Add(1)
			time.Sleep(100 * time.Microsecond)
			return nil, nil
		},
	}
	_, err := r.RunBatch(context.Background(), specs)
	if err == nil {
		t.Fatal("batch with a failing replication returned nil error")
	}
	// Determinism: always the lowest job index (scenario 0, replication
	// 0), regardless of scheduling.
	want := `scenario "failfast" replication 0: boom`
	if err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
	// Fail fast: the vast majority of the batch was drained, not run.
	// Workers that already picked up a job may finish it, so allow a
	// small scheduling-dependent margin.
	if n := simulated.Load(); n > seeds/10 {
		t.Errorf("%d of %d replications simulated after the failure — no fail-fast", n, seeds)
	}
}

// The lowest-index error wins even when a later job errors first in
// wall-clock time.
func TestRunBatchKeepsLowestIndexError(t *testing.T) {
	specs := []*Spec{{
		Name:     "order",
		Topology: TopologySpec{Kind: TopoConnected, N: 2},
		Duration: Duration(time.Second),
		Seeds:    8,
	}}
	r := Runner{
		Parallelism: 4,
		runRep: func(sp *Spec, rep int) (*replication, error) {
			switch rep {
			case 0:
				time.Sleep(5 * time.Millisecond) // errors last in wall-clock time
				return nil, errors.New("slow low-index failure")
			case 5:
				return nil, errors.New("fast high-index failure")
			}
			return nil, nil
		},
	}
	_, err := r.RunBatch(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "replication 0") {
		t.Errorf("reported %v, want the replication-0 error", err)
	}
}

// A single replication re-run must be bit-identical to itself (the
// determinism base case the invariance test builds on).
func TestRunnerDeterminism(t *testing.T) {
	sp := &Spec{
		Name:     "det",
		Scheme:   SchemeTORA,
		Topology: TopologySpec{Kind: TopoDisc, N: 8, Radius: 16},
		Traffic:  []TrafficSpec{{Model: "poisson", Rate: 200}},
		Duration: Duration(2 * time.Second),
		Seeds:    2,
	}
	r := Runner{}
	a, err := r.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := MarshalSummaries([]*Summary{a})
	bj, _ := MarshalSummaries([]*Summary{b})
	if !bytes.Equal(aj, bj) {
		t.Errorf("same spec diverged across runs:\n%s\nvs\n%s", aj, bj)
	}
}

// Cancelling the context mid-batch must drain the remaining jobs
// unsimulated and report the context's error.
func TestRunBatchCancellation(t *testing.T) {
	const seeds = 500
	specs := []*Spec{{
		Name:     "cancel",
		Topology: TopologySpec{Kind: TopoConnected, N: 2},
		Duration: Duration(time.Second),
		Seeds:    seeds,
	}}
	ctx, cancel := context.WithCancel(context.Background())
	var simulated atomic.Int64
	r := Runner{
		Parallelism: 4,
		runRep: func(sp *Spec, rep int) (*replication, error) {
			if simulated.Add(1) == 3 {
				cancel() // cancel from inside the batch, mid-flight
			}
			time.Sleep(100 * time.Microsecond)
			return nil, nil
		},
	}
	defer r.Close()
	_, err := r.RunBatch(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := simulated.Load(); n > seeds/10 {
		t.Errorf("%d of %d replications simulated after cancel — no drain", n, seeds)
	}
}

// A batch that fully completes before anyone observes the cancellation
// reports its results; a batch started on an already-cancelled context
// reports the context error.
func TestRunBatchPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Runner{Parallelism: 2, runRep: func(sp *Spec, rep int) (*replication, error) {
		t.Error("replication simulated under a cancelled context")
		return nil, nil
	}}
	defer r.Close()
	_, err := r.Run(ctx, &Spec{
		Name:     "precancel",
		Topology: TopologySpec{Kind: TopoConnected, N: 2},
		Duration: Duration(time.Second),
		Seeds:    4,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A simulation error recorded before the cancellation beats ctx.Err():
// the deterministic lowest-index error stays the reported one.
func TestRunBatchSimulationErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := Runner{Parallelism: 1, runRep: func(sp *Spec, rep int) (*replication, error) {
		if rep == 0 {
			cancel()
			return nil, errors.New("boom")
		}
		return nil, nil
	}}
	defer r.Close()
	_, err := r.Run(ctx, &Spec{
		Name:     "errwins",
		Topology: TopologySpec{Kind: TopoConnected, N: 2},
		Duration: Duration(time.Second),
		Seeds:    8,
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the simulation error", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("simulation error %v reported as cancellation", err)
	}
}

// Close is idempotent, safe from many goroutines, and safe concurrently
// with in-flight batches: running batches finish (their summaries land),
// later Run calls fail with ErrClosed, and every Close returns only
// after teardown.
func TestCloseConcurrentWithInFlightBatches(t *testing.T) {
	r := &Runner{Parallelism: 4}
	sp := func(name string) *Spec {
		return &Spec{
			Name:     name,
			Topology: TopologySpec{Kind: TopoConnected, N: 3},
			Duration: Duration(500 * time.Millisecond),
			Seeds:    6,
		}
	}
	const batches = 4
	errs := make(chan error, batches)
	for i := 0; i < batches; i++ {
		i := i
		go func() {
			sum, err := r.Run(context.Background(), sp(fmt.Sprintf("b%d", i)))
			if err == nil && sum.Successes == 0 {
				err = errors.New("completed batch made no progress")
			}
			errs <- err
		}()
	}
	// Let some batches get in flight, then close from several goroutines
	// at once.
	time.Sleep(2 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); r.Close() }()
	}
	wg.Wait()
	for i := 0; i < batches; i++ {
		// Every batch either ran to completion (started before Close) or
		// was refused outright — never a partial result or a panic.
		if err := <-errs; err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("batch error: %v", err)
		}
	}
	// After Close the runner stays closed.
	if _, err := r.Run(context.Background(), sp("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after Close = %v, want ErrClosed", err)
	}
	r.Close() // still idempotent
}

// A Runner that never ran closes cleanly, and a closed-before-first-use
// Runner refuses work.
func TestCloseBeforeFirstUse(t *testing.T) {
	r := &Runner{}
	r.Close()
	r.Close()
	if _, err := r.Run(context.Background(), &Spec{
		Name:     "afterclose",
		Topology: TopologySpec{Kind: TopoConnected, N: 2},
		Duration: Duration(time.Second),
	}); !errors.Is(err, ErrClosed) {
		t.Errorf("Run on closed runner = %v, want ErrClosed", err)
	}
}

// Validation failures must wrap ErrInvalidSpec so facade layers can
// classify them without string matching.
func TestValidationWrapsErrInvalidSpec(t *testing.T) {
	r := Runner{}
	defer r.Close()
	_, err := r.Run(context.Background(), &Spec{Name: "bad", Topology: TopologySpec{Kind: "torus", N: 3}})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("runner validation error %v does not wrap ErrInvalidSpec", err)
	}
	if _, err := Decode([]byte(`{"topology":{"kind":"connected","n":0}}`)); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("decode validation error %v does not wrap ErrInvalidSpec", err)
	}
	sp := &Spec{Topology: TopologySpec{Kind: TopoConnected, N: 2}, Duration: -1}
	if err := sp.Validate(); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("Validate error %v does not wrap ErrInvalidSpec", err)
	}
}
