package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/stats"
)

// AggStat summarises one metric across replications.
type AggStat struct {
	// Mean is the across-replication sample mean.
	Mean float64 `json:"mean"`
	// StdDev is the unbiased sample standard deviation (0 for a single
	// replication).
	StdDev float64 `json:"stddev"`
	// CI95 is the half-width of the normal-approximation 95% confidence
	// interval of the mean.
	CI95 float64 `json:"ci95"`
}

// aggregate folds per-replication values in index order — the
// fold order is fixed, so the floating-point result is bit-identical for
// any execution schedule.
func aggregate(xs []float64) AggStat {
	var w stats.Welford
	for _, x := range xs {
		w.Add(x)
	}
	return AggStat{Mean: w.Mean(), StdDev: w.StdDev(), CI95: 1.96 * w.StdErr()}
}

// LatencyStats summarises the merged delivered-packet delay histogram,
// in milliseconds.
type LatencyStats struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Packets is the number of delivered packets the percentiles
	// summarise (all replications).
	Packets int64 `json:"packets"`
}

// CaptureStats aggregates the frame-capture post-analysis.
type CaptureStats struct {
	// Frames is the total captured frame count across replications.
	Frames int64 `json:"frames"`
	// ShortTermJain is the mean sliding-window fairness index.
	ShortTermJain AggStat `json:"short_term_jain"`
}

// Summary is the aggregate outcome of a scenario: per-replication
// metrics reduced to mean/CI statistics, plus exact sums where sums are
// the natural aggregate. It marshals to stable JSON (struct fields and
// slices only), which is what the golden files pin.
type Summary struct {
	Name         string   `json:"name"`
	Scheme       string   `json:"scheme"`
	Stations     int      `json:"stations"`
	Replications int      `json:"replications"`
	Duration     Duration `json:"duration"`
	Warmup       Duration `json:"warmup"`

	// HiddenPairs is the per-replication hidden-pair count (varies when
	// the topology redraws per seed).
	HiddenPairs AggStat `json:"hidden_pairs"`

	ThroughputMbps AggStat `json:"throughput_mbps"`
	ConvergedMbps  AggStat `json:"converged_mbps"`
	CollisionRate  AggStat `json:"collision_rate"`
	JainIndex      AggStat `json:"jain_index"`
	WeightedJain   AggStat `json:"weighted_jain"`
	APIdleSlots    AggStat `json:"ap_idle_slots"`

	// Latency merges every replication's delay histogram; JitterMs is
	// the pooled mean |ΔL| between consecutive same-station deliveries.
	Latency  LatencyStats `json:"latency"`
	JitterMs float64      `json:"jitter_ms"`

	// Exact sums across replications.
	Successes      int64  `json:"successes"`
	Collisions     int64  `json:"collisions"`
	FrameErrors    int64  `json:"frame_errors"`
	PacketsArrived int64  `json:"packets_arrived"`
	PacketsDropped int64  `json:"packets_dropped"`
	Events         uint64 `json:"events"`

	// Capture is present only for capture-enabled scenarios.
	Capture *CaptureStats `json:"capture,omitempty"`
}

// summarize reduces a spec's replications (in index order) to a Summary.
func summarize(sp *Spec, reps []*replication) *Summary {
	n := len(reps)
	var (
		hidden   = make([]float64, n)
		tput     = make([]float64, n)
		conv     = make([]float64, n)
		collRate = make([]float64, n)
		jain     = make([]float64, n)
		wjain    = make([]float64, n)
		idle     = make([]float64, n)
		stJain   = make([]float64, n)
		lat      stats.DurationHist
		jitSumNs int64
		jitCount int64
		sum      Summary
		frames   int64
		stations int
	)
	for i, rep := range reps {
		res := rep.res
		hidden[i] = float64(rep.hiddenPairs)
		tput[i] = res.Throughput / 1e6
		conv[i] = rep.converged / 1e6
		collRate[i] = res.CollisionRate()
		jain[i] = res.JainIndex()
		wjain[i] = res.WeightedJainIndex()
		idle[i] = res.APIdleSlots
		stJain[i] = rep.stJain
		lat.Merge(&res.Latency)
		jitSumNs += int64(res.JitterSum)
		jitCount += res.JitterCount
		sum.Successes += res.Successes
		sum.Collisions += res.Collisions
		sum.FrameErrors += res.FrameErrors
		sum.PacketsArrived += res.PacketsArrived
		sum.PacketsDropped += res.PacketsDropped
		sum.Events += res.EventsFired
		frames += int64(rep.frames)
		stations = len(res.Stations)
	}
	sum.Name = sp.Name
	sum.Scheme = sp.Scheme
	sum.Stations = stations
	sum.Replications = n
	sum.Duration = sp.Duration
	sum.Warmup = *sp.Warmup
	sum.HiddenPairs = aggregate(hidden)
	sum.ThroughputMbps = aggregate(tput)
	sum.ConvergedMbps = aggregate(conv)
	sum.CollisionRate = aggregate(collRate)
	sum.JainIndex = aggregate(jain)
	sum.WeightedJain = aggregate(wjain)
	sum.APIdleSlots = aggregate(idle)
	sum.Latency = LatencyStats{
		MeanMs:  lat.Mean().Seconds() * 1e3,
		P50Ms:   lat.Quantile(0.50).Seconds() * 1e3,
		P95Ms:   lat.Quantile(0.95).Seconds() * 1e3,
		P99Ms:   lat.Quantile(0.99).Seconds() * 1e3,
		MaxMs:   lat.Max().Seconds() * 1e3,
		Packets: lat.Count(),
	}
	if jitCount > 0 {
		sum.JitterMs = float64(jitSumNs) / float64(jitCount) / 1e6
	}
	if sp.Capture {
		sum.Capture = &CaptureStats{Frames: frames, ShortTermJain: aggregate(stJain)}
	}
	return &sum
}

// MarshalSummaries renders summaries as the canonical indented JSON the
// golden files and the wlansim -summary-json flag share. The byte output
// is deterministic: struct-field order is fixed and float formatting is
// Go's shortest round-trip encoding.
func MarshalSummaries(sums []*Summary) ([]byte, error) {
	out, err := json.MarshalIndent(sums, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// String renders a compact human-readable report.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-10s N=%-4d reps=%-3d", s.Name, s.Scheme, s.Stations, s.Replications)
	fmt.Fprintf(&b, " conv %.3f±%.3f Mbps", s.ConvergedMbps.Mean, s.ConvergedMbps.CI95)
	fmt.Fprintf(&b, "  coll %.1f%%", 100*s.CollisionRate.Mean)
	fmt.Fprintf(&b, "  Jain %.4f", s.JainIndex.Mean)
	if s.HiddenPairs.Mean > 0 {
		fmt.Fprintf(&b, "  hidden %.1f", s.HiddenPairs.Mean)
	}
	if s.PacketsArrived > 0 {
		fmt.Fprintf(&b, "  lat p50 %.2f ms p99 %.2f ms", s.Latency.P50Ms, s.Latency.P99Ms)
		if s.PacketsDropped > 0 {
			fmt.Fprintf(&b, "  drops %d", s.PacketsDropped)
		}
	}
	if s.Capture != nil {
		fmt.Fprintf(&b, "  frames %d  stJain %.4f", s.Capture.Frames, s.Capture.ShortTermJain.Mean)
	}
	return b.String()
}
