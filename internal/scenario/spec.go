// Package scenario is the declarative workload layer: a JSON-encodable
// Spec describes a complete simulation campaign — topology, per-station
// traffic model, MAC scheme, node churn, duration and replication count —
// and a Runner executes its replications across a worker pool with
// deterministic per-replication RNG substreams, aggregating mean/CI
// summaries that are bit-identical for any Parallelism setting.
//
// The package exists so that new workloads are data, not code: every
// hand-written examples/ main of the early repository is now a checked-in
// .json spec executed through one engine-facing path (wlansim -scenario,
// the experiment harness, and tests all fan out through the same Runner).
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// paperRadii is the geometry every validation bound in this package is
// phrased against — the same radii the builders realise, so a radii
// change moves the bounds (and the rim projection) with it.
var paperRadii = topo.PaperRadii()

// ErrInvalidSpec is wrapped by every spec/suite validation failure, so
// callers (the wlan facade in particular) can distinguish "the input is
// wrong" from "the simulation failed" with errors.Is.
var ErrInvalidSpec = errors.New("invalid spec")

// Duration is a simulated time span that marshals as a Go duration
// string ("250ms", "90s"). Plain JSON numbers are accepted as seconds.
type Duration time.Duration

// MarshalJSON renders the duration as a string, e.g. "1m30s".
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "90s"-style strings or numeric seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err == nil {
		if math.IsNaN(secs) || math.IsInf(secs, 0) || math.Abs(secs) > 1e9 {
			return fmt.Errorf("scenario: duration %v seconds out of range", secs)
		}
		*d = Duration(secs * float64(time.Second))
		return nil
	}
	return fmt.Errorf("scenario: duration must be a string like \"90s\" or a number of seconds")
}

// Point is a station position in metres; the AP sits at the origin.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Topology family names accepted by TopologySpec.Kind.
const (
	TopoConnected = "connected" // n stations on a circle, every pair in sensing range
	TopoDisc      = "disc"      // uniform draw in a disc; radius > 12 m yields hidden pairs
	TopoClusters  = "clusters"  // two clusters either side of the AP, maximally hidden
	TopoCustom    = "custom"    // explicit station positions
)

// TopologySpec selects a topology family from internal/topo.
type TopologySpec struct {
	// Kind is one of the Topo* constants.
	Kind string `json:"kind"`
	// N is the station count (ignored for custom, which takes
	// len(Points)).
	N int `json:"n,omitempty"`
	// Radius is the circle radius (connected, default 8 m) or the disc
	// radius (disc, default 16 m). Disc stations drawn beyond the 16 m
	// decode range are projected onto the rim, as in the paper's Fig. 6–7
	// construction.
	Radius float64 `json:"radius,omitempty"`
	// Separation is the cluster distance for Kind "clusters" (default
	// 30 m — beyond the 24 m sensing radius, so every cross-cluster pair
	// is hidden).
	Separation float64 `json:"separation,omitempty"`
	// Points fixes explicit positions for Kind "custom".
	Points []Point `json:"points,omitempty"`
	// Seed fixes the random topology draw (disc). 0 derives the draw
	// from each replication's seed, so every replication sees a fresh
	// placement — the convention of the paper's hidden-node sweeps. A
	// non-zero seed pins one placement across all replications.
	Seed int64 `json:"seed,omitempty"`
}

// TrafficSpec describes one (or all) stations' packet arrival process.
type TrafficSpec struct {
	// Model is "saturated" (default), "poisson" or "onoff".
	Model string `json:"model"`
	// Rate is the mean packet rate in packets/second while emitting.
	Rate float64 `json:"rate,omitempty"`
	// OnMean/OffMean are the mean exponential phase lengths for onoff.
	OnMean  Duration `json:"on_mean,omitempty"`
	OffMean Duration `json:"off_mean,omitempty"`
	// QueueCap bounds the station queue in packets (0 applies the
	// engines' default cap; the backlog is always finite).
	QueueCap int `json:"queue_cap,omitempty"`
}

// ChurnStep pins the active-station count from a given instant: the
// first Active stations are active, the rest depart (finishing any
// exchange in flight first).
type ChurnStep struct {
	At     Duration `json:"at"`
	Active int      `json:"active"`
}

// Spec is one declarative scenario: everything needed to reproduce a
// simulation campaign from a JSON file and a seed.
type Spec struct {
	// Name identifies the scenario in summaries and golden files.
	Name string `json:"name"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Topology places the stations.
	Topology TopologySpec `json:"topology"`
	// Scheme is the channel-access scheme: "802.11" (default),
	// "IdleSense", "wTOP-CSMA" or "TORA-CSMA".
	Scheme string `json:"scheme,omitempty"`
	// Weights are per-station fairness weights (wTOP-CSMA only; nil
	// means unit weights).
	Weights []float64 `json:"weights,omitempty"`
	// Traffic holds zero (all saturated), one (applied to every
	// station) or N per-station arrival processes.
	Traffic []TrafficSpec `json:"traffic,omitempty"`
	// Churn schedules node arrivals/departures.
	Churn []ChurnStep `json:"churn,omitempty"`
	// Duration is the simulated time per replication (default 30s).
	Duration Duration `json:"duration,omitempty"`
	// Warmup is excluded from converged-throughput averages. Unset
	// defaults to Duration/2; an explicit "0s" averages the whole run.
	Warmup *Duration `json:"warmup,omitempty"`
	// Seeds is the number of independent replications (default 1).
	Seeds int `json:"seeds,omitempty"`
	// Seed is the base seed; replication r runs with Seed+r (default 1).
	Seed int64 `json:"seed,omitempty"`
	// UpdatePeriod overrides the controller window Δ (default 250ms).
	UpdatePeriod Duration `json:"update_period,omitempty"`
	// RTSCTS enables the RTS/CTS exchange before every data frame.
	RTSCTS bool `json:"rtscts,omitempty"`
	// FrameErrorRate applies i.i.d. loss to data frames, in [0, 1).
	FrameErrorRate float64 `json:"frame_error_rate,omitempty"`
	// Capture records every frame of every replication to an in-memory
	// trace and reports capture statistics (frame counts, short-term
	// fairness) in the summary.
	Capture bool `json:"capture,omitempty"`
	// CaptureWindow is the sliding window, in successful frames, of the
	// short-term fairness index (default 3·N).
	CaptureWindow int `json:"capture_window,omitempty"`
}

// Suite is a named list of scenarios — the on-disk file format. A file
// holding a single bare Spec object is accepted too.
type Suite struct {
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`
	Scenarios   []Spec `json:"scenarios"`
}

// Resource ceilings. Decode is exposed to untrusted input (files,
// fuzzing), so validation bounds every dimension that controls memory or
// CPU rather than trusting the caller.
const (
	// MaxStations bounds the station count. The ceiling is derived from
	// per-station capacity, not connectivity storage: topologies are
	// grid-indexed (O(n) to build, no n×n matrices), so the binding cost
	// is the engines' per-station state — station structs plus one
	// ~4.9 KB lagged-Fibonacci RNG each, ≈ 5 KB/station, ≈ 0.5 GB at the
	// cap. Dense layouts that would need more than
	// topo.DefaultAdjacencyBudget materialised neighbour entries are
	// additionally refused by the event engine at build time, so a
	// hostile spec stays memory-bounded end to end.
	MaxStations = 100_000
	// MaxSeeds bounds replications per scenario. Generous enough for
	// trusted paper-scale sweeps routed through the runner (the
	// experiment CLI's -seeds flag lands here too); hostile input is
	// bounded on memory, not CPU — any accepted run still costs the
	// invoker wall-clock.
	MaxSeeds = 10000
	// MaxDuration bounds simulated time per replication.
	MaxDuration = Duration(24 * time.Hour)
	// MaxScenarios bounds scenarios per suite.
	MaxScenarios = 256
	// MaxChurnSteps bounds the churn schedule length.
	MaxChurnSteps = 10000
	// maxSpecBytes bounds the accepted file size.
	maxSpecBytes = 8 << 20
)

// Scheme names accepted by Spec.Scheme: the paper's four schemes, as
// named by the canonical internal/scheme mapping.
const (
	SchemeDCF       = scheme.DCF
	SchemeIdleSense = scheme.IdleSense
	SchemeWTOP      = scheme.WTOP
	SchemeTORA      = scheme.TORA
)

// Decode parses and validates a scenario file: either a Suite
// ({"scenarios": [...]}) or a single bare Spec object. Unknown fields
// are rejected, every numeric dimension is bounds-checked, and malformed
// input returns an error — never a panic (FuzzSpecDecode enforces this).
// The returned suite has all defaults applied.
func Decode(data []byte) (*Suite, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("scenario: %w: file is %d bytes, limit %d", ErrInvalidSpec, len(data), maxSpecBytes)
	}
	suite := &Suite{}
	suiteErr := strictUnmarshal(data, suite)
	if suiteErr == nil && suite.Scenarios != nil {
		if err := suite.withDefaults(); err != nil {
			return nil, err
		}
		return suite, nil
	}
	// A top-level "scenarios" key means the author wrote a suite: report
	// the suite parse error rather than the (misleading) result of
	// re-parsing the same bytes as a bare Spec.
	if suiteErr != nil && looksLikeSuite(data) {
		return nil, fmt.Errorf("scenario: bad suite: %w", wrapInvalid(suiteErr))
	}
	var spec Spec
	if err := strictUnmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("scenario: not a suite ({\"scenarios\": [...]}) or a single scenario object: %w", wrapInvalid(err))
	}
	suite = &Suite{Name: spec.Name, Scenarios: []Spec{spec}}
	if err := suite.withDefaults(); err != nil {
		return nil, err
	}
	return suite, nil
}

// wrapInvalid marks err as an ErrInvalidSpec failure without double
// wrapping.
func wrapInvalid(err error) error {
	if err == nil || errors.Is(err, ErrInvalidSpec) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrInvalidSpec, err)
}

// looksLikeSuite reports whether the input is a JSON object with a
// top-level "scenarios" key (tolerant probe, used only to pick the more
// helpful of two parse errors).
func looksLikeSuite(data []byte) bool {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	_, ok := probe["scenarios"]
	return ok
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// garbage.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second decode must hit EOF; otherwise the file has trailing
	// content (e.g. two concatenated objects).
	if dec.More() {
		return fmt.Errorf("trailing data after the first JSON value")
	}
	return nil
}

// withDefaults validates the suite and fills every default in place.
// Failures wrap ErrInvalidSpec.
func (su *Suite) withDefaults() error {
	if err := su.applyDefaults(); err != nil {
		if errors.Is(err, ErrInvalidSpec) {
			return err
		}
		return fmt.Errorf("%w: %w", ErrInvalidSpec, err)
	}
	return nil
}

func (su *Suite) applyDefaults() error {
	if len(su.Scenarios) == 0 {
		return fmt.Errorf("scenario: suite has no scenarios")
	}
	if len(su.Scenarios) > MaxScenarios {
		return fmt.Errorf("scenario: %d scenarios exceed the limit %d", len(su.Scenarios), MaxScenarios)
	}
	seen := map[string]bool{}
	for i := range su.Scenarios {
		sp := &su.Scenarios[i]
		if sp.Name == "" {
			sp.Name = fmt.Sprintf("scenario-%d", i)
		}
		if seen[sp.Name] {
			return fmt.Errorf("scenario: duplicate scenario name %q", sp.Name)
		}
		seen[sp.Name] = true
		if err := sp.withDefaults(); err != nil {
			return fmt.Errorf("scenario %q: %w", sp.Name, err)
		}
	}
	return nil
}

// Validate checks the spec and fills every default in place. It is
// idempotent, so already-defaulted specs pass unchanged. Programmatic
// builders (the sweep expander, CLIs) call this; Decode applies it to
// every file-sourced spec automatically. Failures wrap ErrInvalidSpec.
func (sp *Spec) Validate() error { return sp.withDefaults() }

// withDefaults validates the spec and fills defaults in place. It is
// idempotent, so already-defaulted specs pass unchanged. Failures wrap
// ErrInvalidSpec.
func (sp *Spec) withDefaults() error {
	if err := sp.applyDefaults(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidSpec, err)
	}
	return nil
}

func (sp *Spec) applyDefaults() error {
	if sp.Scheme == "" {
		sp.Scheme = SchemeDCF
	}
	switch sp.Scheme {
	case SchemeDCF, SchemeIdleSense, SchemeWTOP, SchemeTORA:
	default:
		return fmt.Errorf("unknown scheme %q (want %s, %s, %s or %s)",
			sp.Scheme, SchemeDCF, SchemeIdleSense, SchemeWTOP, SchemeTORA)
	}
	if sp.Duration == 0 {
		sp.Duration = Duration(30 * time.Second)
	}
	if sp.Duration < 0 || sp.Duration > MaxDuration {
		return fmt.Errorf("duration %v outside (0, %v]", time.Duration(sp.Duration), time.Duration(MaxDuration))
	}
	if sp.Warmup == nil {
		w := sp.Duration / 2
		sp.Warmup = &w
	}
	if *sp.Warmup < 0 || *sp.Warmup >= sp.Duration {
		return fmt.Errorf("warmup %v outside [0, duration %v)", time.Duration(*sp.Warmup), time.Duration(sp.Duration))
	}
	if sp.Seeds == 0 {
		sp.Seeds = 1
	}
	if sp.Seeds < 0 || sp.Seeds > MaxSeeds {
		return fmt.Errorf("seeds %d outside [1, %d]", sp.Seeds, MaxSeeds)
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.UpdatePeriod < 0 || sp.UpdatePeriod > sp.Duration {
		return fmt.Errorf("update_period %v outside [0, duration]", time.Duration(sp.UpdatePeriod))
	}
	if sp.UpdatePeriod > 0 && sp.UpdatePeriod < Duration(time.Millisecond) {
		return fmt.Errorf("update_period %v below 1ms floods the windowed series", time.Duration(sp.UpdatePeriod))
	}
	if math.IsNaN(sp.FrameErrorRate) || sp.FrameErrorRate < 0 || sp.FrameErrorRate >= 1 {
		return fmt.Errorf("frame_error_rate %v outside [0, 1)", sp.FrameErrorRate)
	}
	if err := sp.Topology.withDefaults(); err != nil {
		return err
	}
	n := sp.Topology.stationCount()
	if sp.Weights != nil {
		if len(sp.Weights) != n {
			return fmt.Errorf("%d weights for %d stations", len(sp.Weights), n)
		}
		if sp.Scheme != SchemeWTOP {
			return fmt.Errorf("weights require the %s scheme", SchemeWTOP)
		}
		for i, w := range sp.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				return fmt.Errorf("weight[%d] = %v must be a positive finite number", i, w)
			}
		}
	}
	switch len(sp.Traffic) {
	case 0, 1:
	case n:
	default:
		return fmt.Errorf("traffic must list 0, 1 or %d entries, got %d", n, len(sp.Traffic))
	}
	for i := range sp.Traffic {
		ts, err := sp.Traffic[i].toTraffic()
		if err != nil {
			return fmt.Errorf("traffic[%d]: %w", i, err)
		}
		if err := ts.Validate(); err != nil {
			return fmt.Errorf("traffic[%d]: %w", i, err)
		}
	}
	if len(sp.Churn) > MaxChurnSteps {
		return fmt.Errorf("%d churn steps exceed the limit %d", len(sp.Churn), MaxChurnSteps)
	}
	for i, c := range sp.Churn {
		if c.At < 0 || c.At > sp.Duration {
			return fmt.Errorf("churn[%d].at %v outside [0, duration]", i, time.Duration(c.At))
		}
		if c.Active < 0 || c.Active > n {
			return fmt.Errorf("churn[%d].active %d outside [0, %d]", i, c.Active, n)
		}
	}
	if sp.CaptureWindow < 0 || sp.CaptureWindow > 1<<20 {
		return fmt.Errorf("capture_window %d outside [0, %d]", sp.CaptureWindow, 1<<20)
	}
	if sp.Capture && sp.CaptureWindow == 0 {
		sp.CaptureWindow = 3 * n
	}
	return nil
}

// withDefaults validates the topology spec and fills defaults in place.
func (ts *TopologySpec) withDefaults() error {
	for _, p := range ts.Points {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("topology: non-finite point (%v, %v)", p.X, p.Y)
		}
	}
	if math.IsNaN(ts.Radius) || math.IsInf(ts.Radius, 0) || ts.Radius < 0 {
		return fmt.Errorf("topology: radius %v must be a non-negative finite number", ts.Radius)
	}
	if math.IsNaN(ts.Separation) || math.IsInf(ts.Separation, 0) || ts.Separation < 0 {
		return fmt.Errorf("topology: separation %v must be a non-negative finite number", ts.Separation)
	}
	switch ts.Kind {
	case "", TopoConnected:
		ts.Kind = TopoConnected
		if ts.Radius == 0 {
			ts.Radius = 8
		}
		// Opposite points on the circle are a diameter apart, so staying
		// within half the sensing radius keeps every pair connected.
		if ts.Radius > paperRadii.Sensing/2 {
			return fmt.Errorf("topology: connected circle radius %v exceeds %g m (pairs would fall out of sensing range)", ts.Radius, paperRadii.Sensing/2)
		}
	case TopoDisc:
		if ts.Radius == 0 {
			ts.Radius = 16
		}
		if ts.Radius > 64 {
			return fmt.Errorf("topology: disc radius %v exceeds 64 m", ts.Radius)
		}
	case TopoClusters:
		if ts.Separation == 0 {
			ts.Separation = 30
		}
		if ts.Separation/2 > paperRadii.Rim() {
			return fmt.Errorf("topology: cluster separation %v places stations beyond the %g m decode radius", ts.Separation, paperRadii.Transmission)
		}
	case TopoCustom:
		if len(ts.Points) == 0 {
			return fmt.Errorf("topology: custom kind needs points")
		}
		if ts.N != 0 && ts.N != len(ts.Points) {
			return fmt.Errorf("topology: n=%d contradicts %d points", ts.N, len(ts.Points))
		}
		for i, p := range ts.Points {
			if math.Hypot(p.X, p.Y) > paperRadii.Transmission {
				return fmt.Errorf("topology: point %d at (%v, %v) exceeds the %g m AP decode radius", i, p.X, p.Y, paperRadii.Transmission)
			}
		}
		ts.N = len(ts.Points)
	default:
		return fmt.Errorf("topology: unknown kind %q (want %s, %s, %s or %s)",
			ts.Kind, TopoConnected, TopoDisc, TopoClusters, TopoCustom)
	}
	if ts.Kind != TopoCustom && len(ts.Points) > 0 {
		return fmt.Errorf("topology: points are only valid with kind %q", TopoCustom)
	}
	if ts.N < 1 || ts.N > MaxStations {
		return fmt.Errorf("topology: station count %d outside [1, %d]", ts.N, MaxStations)
	}
	if ts.Kind == TopoClusters {
		// TwoClusters spreads members along Y by 0.1·(i/2), so the far
		// corner of a large cluster can leave the AP decode radius even
		// when Separation/2 is inside it.
		if far := math.Hypot(ts.Separation/2, 0.1*float64((ts.N-1)/2)); far > paperRadii.Rim() {
			return fmt.Errorf("topology: %d clustered stations spread to %.2f m from the AP, beyond the %g m decode radius", ts.N, far, paperRadii.Transmission)
		}
	}
	return nil
}

// stationCount returns the resolved station count (valid after
// withDefaults).
func (ts *TopologySpec) stationCount() int { return ts.N }

// EngineSpec converts the declarative form to the engine-facing
// traffic.Spec (unvalidated; call its Validate before simulating).
func (t TrafficSpec) EngineSpec() (traffic.Spec, error) { return t.toTraffic() }

// toTraffic converts the JSON form to the engine-facing traffic.Spec.
func (t *TrafficSpec) toTraffic() (traffic.Spec, error) {
	kind, err := traffic.KindFromString(t.Model)
	if err != nil {
		return traffic.Spec{}, err
	}
	return traffic.Spec{
		Kind:     kind,
		Rate:     t.Rate,
		OnMean:   sim.Duration(t.OnMean),
		OffMean:  sim.Duration(t.OffMean),
		QueueCap: t.QueueCap,
	}, nil
}

// arrivals expands the spec's traffic list to one engine spec per
// station, or nil when every station is saturated (the engines' fast
// path). Call only on validated specs.
func (sp *Spec) arrivals(n int) []traffic.Spec {
	if len(sp.Traffic) == 0 {
		return nil
	}
	out := make([]traffic.Spec, n)
	unsat := false
	for i := range out {
		src := &sp.Traffic[0]
		if len(sp.Traffic) == n {
			src = &sp.Traffic[i]
		}
		ts, err := src.toTraffic()
		if err != nil {
			panic(fmt.Sprintf("scenario: unvalidated traffic spec: %v", err))
		}
		out[i] = ts
		if ts.Unsaturated() {
			unsat = true
		}
	}
	if !unsat {
		return nil
	}
	return out
}

// Quick returns a copy scaled for fast CI runs: simulated time capped at
// 3 s (churn instants and warmup rescaled proportionally) and at most 2
// replications. The transform is deterministic, so golden summaries
// generated at quick scale are reproducible anywhere.
func (sp Spec) Quick() Spec {
	q := sp
	const quickDuration = Duration(3 * time.Second)
	if q.Duration > quickDuration {
		ratio := float64(quickDuration) / float64(q.Duration)
		if q.Warmup != nil {
			w := Duration(float64(*q.Warmup) * ratio)
			// Warmup and Duration scale independently through float
			// truncation, so clamp to keep the warmup < duration
			// invariant: a spec that validated at full scale must stay
			// valid at quick scale.
			if w >= quickDuration {
				w = quickDuration - 1
			}
			if w < 0 {
				w = 0
			}
			q.Warmup = &w
		}
		q.Churn = append([]ChurnStep(nil), sp.Churn...)
		for i := range q.Churn {
			at := Duration(float64(q.Churn[i].At) * ratio)
			// Same clamp for the at ≤ duration invariant.
			if at > quickDuration {
				at = quickDuration
			}
			if at < 0 {
				at = 0
			}
			q.Churn[i].At = at
		}
		// An explicit controller window must stay inside the shortened
		// run (and above the 1 ms validation floor) so a spec that is
		// valid at full scale remains valid at quick scale.
		if q.UpdatePeriod > 0 {
			q.UpdatePeriod = Duration(float64(q.UpdatePeriod) * ratio)
			if q.UpdatePeriod < Duration(time.Millisecond) {
				q.UpdatePeriod = Duration(time.Millisecond)
			}
		}
		q.Duration = quickDuration
	}
	if q.Seeds > 2 {
		q.Seeds = 2
	}
	return q
}

// Quick applies Spec.Quick to every scenario of the suite.
func (su Suite) Quick() *Suite {
	out := su
	out.Scenarios = make([]Spec, len(su.Scenarios))
	for i, sp := range su.Scenarios {
		out.Scenarios[i] = sp.Quick()
	}
	return &out
}
