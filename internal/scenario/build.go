package scenario

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
)

// BuildTopology realises a topology spec for one replication. Random
// families (disc) draw from NewRNG(ts.Seed) when the spec pins a seed,
// else from NewRNG(repSeed ^ 0x5eed) so each replication sees a fresh
// placement — matching, respectively, the wlan.HiddenDisc convention of
// the original examples and the per-seed redraws of the experiment
// harness. Call only on validated specs.
func BuildTopology(ts *TopologySpec, repSeed int64) (*topo.Topology, error) {
	var t *topo.Topology
	switch ts.Kind {
	case TopoConnected:
		t = topo.New(topo.Point{}, topo.CircleEdge(ts.N, ts.Radius), topo.PaperRadii())
	case TopoDisc:
		seed := ts.Seed
		if seed == 0 {
			seed = repSeed ^ 0x5eed
		}
		rng := sim.NewRNG(seed)
		pts := topo.UniformDisc(ts.N, ts.Radius, rng)
		// Stations drawn beyond the decode radius are projected just
		// inside its rim (the paper's Fig. 7 construction keeps AP
		// connectivity for every station). The rim radius derives from
		// the radii themselves — see topo.Radii.Rim.
		topo.ClampToRim(pts, topo.PaperRadii())
		t = topo.New(topo.Point{}, pts, topo.PaperRadii())
	case TopoClusters:
		t = topo.New(topo.Point{}, topo.TwoClusters(ts.N, ts.Separation), topo.PaperRadii())
	case TopoCustom:
		pts := make([]topo.Point, len(ts.Points))
		for i, p := range ts.Points {
			pts[i] = topo.Point{X: p.X, Y: p.Y}
		}
		t = topo.New(topo.Point{}, pts, topo.PaperRadii())
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", ts.Kind)
	}
	// Enforce the system model's standing assumption for every family:
	// each station must decode (and be decodable by) the AP. Spec
	// validation bounds each family to satisfy this, but the geometric
	// check is the authority.
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
