package scenario

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Metrics is the runner's optional instrumentation: live counters and
// gauges for the replication fan-out path, registered on a shared
// metrics.Registry. A nil Metrics (the default) costs the hot path one
// predicate per replication; a non-nil one costs a handful of atomic
// adds. Instrumentation is a pure observer — it never feeds back into
// simulation state — so metrics-on runs stay bit-identical to
// metrics-off runs.
type Metrics struct {
	// Replications counts completed replications.
	Replications *metrics.Counter
	// InFlight gauges replications currently simulating on a worker.
	InFlight *metrics.Gauge
	// Events counts kernel events fired across all replications.
	Events *metrics.Counter
	// Workers gauges the pool size (set when the pool starts).
	Workers *metrics.Gauge

	// startNanos is the wall-clock time of the first replication,
	// recorded once; events/sec is measured from here.
	startNanos atomic.Int64
}

// NewMetrics registers the runner's metric set on reg and returns the
// handle to hand to a Runner. Derived series — worker utilization and
// events/sec — are computed at scrape time from the primitives.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		Replications: reg.Counter("wlansim_replications_total",
			"Completed scenario replications."),
		InFlight: reg.Gauge("wlansim_replications_in_flight",
			"Replications currently simulating on a worker."),
		Events: reg.Counter("wlansim_sim_events_total",
			"Kernel events fired across all replications."),
		Workers: reg.Gauge("wlansim_workers",
			"Simulation worker pool size."),
	}
	reg.GaugeFunc("wlansim_worker_utilization",
		"Fraction of pool workers busy simulating (0..1).",
		func() float64 {
			//wlanvet:allow render-time observer: GaugeFunc bodies run at scrape time, never inside a replication
			w := m.Workers.Value()
			if w <= 0 {
				return 0
			}
			//wlanvet:allow render-time observer: GaugeFunc bodies run at scrape time, never inside a replication
			u := float64(m.InFlight.Value()) / float64(w)
			if u > 1 {
				u = 1
			}
			return u
		})
	reg.GaugeFunc("wlansim_events_per_second",
		"Kernel events fired per wall-clock second since the first replication.",
		func() float64 { return m.EventsPerSecond() })
	return m
}

// begin marks one replication as simulating.
func (m *Metrics) begin() {
	if m == nil {
		return
	}
	//wlanvet:allow run-stamp wall clock: feeds only the events/sec scrape gauge, never simulation state (TestMetricsDoNotChangeOutput pins it)
	m.startNanos.CompareAndSwap(0, time.Now().UnixNano())
	m.InFlight.Inc()
}

// end marks one replication as finished, adding its fired event count
// on success.
func (m *Metrics) end(events uint64, ok bool) {
	if m == nil {
		return
	}
	m.InFlight.Dec()
	if ok {
		m.Replications.Inc()
		m.Events.Add(events)
	}
}

// EventsPerSecond reports the wall-clock event rate since the first
// replication began (0 before any replication ran).
func (m *Metrics) EventsPerSecond() float64 {
	if m == nil {
		return 0
	}
	start := m.startNanos.Load()
	if start == 0 {
		return 0
	}
	//wlanvet:allow run-stamp wall clock: events/sec is a fact about this execution, computed at scrape time only
	elapsed := time.Since(time.Unix(0, start)).Seconds()
	if elapsed <= 0 {
		return 0
	}
	//wlanvet:allow render-time observer: EventsPerSecond serves the scrape gauge, nothing simulation-side calls it
	return float64(m.Events.Value()) / elapsed
}
