package scenario

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/eventsim"
	"repro/internal/model"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrClosed is returned by Run/RunSuite/RunBatch/RunBatchFunc on a
// Runner whose Close has begun.
var ErrClosed = errors.New("scenario: runner is closed")

// Runner executes scenario replications across a persistent worker
// pool. Workers start lazily on the first run and live until Close;
// each worker owns one reusable simulator arena that is Reset — not
// rebuilt — per replication, so steady-state sweep execution performs
// no per-replication construction allocations and no goroutine churn.
//
// Determinism contract: replication r of a spec always runs with seed
// Seed+r and its own RNG substreams — no state is shared between
// replications (Simulator.Reset is bit-identical to a fresh build) —
// and aggregation folds replication results in index order. The
// aggregate Summary is therefore bit-identical for any Parallelism
// setting and any worker/arena assignment, a property the golden tests
// pin.
type Runner struct {
	// Parallelism bounds concurrently running replications
	// (0 = GOMAXPROCS). Fixed once the first run starts the pool.
	Parallelism int

	// Metrics, when non-nil, receives live instrumentation (completed
	// replications, in-flight gauge, kernel events). Set it before the
	// first run; observation never affects simulation state, so
	// results are bit-identical with or without it.
	Metrics *Metrics

	// runRep overrides replication execution in tests (nil = the real
	// simulation).
	runRep func(sp *Spec, rep int) (*replication, error)

	poolOnce  sync.Once
	closeOnce sync.Once
	pool      *workerPool

	// mu guards closed; active counts in-flight batches so Close can
	// wait them out before tearing down the pool.
	mu     sync.Mutex
	closed bool
	active sync.WaitGroup
}

// workerPool is the persistent executor: long-lived workers pulling
// closures from one channel, each holding a private simulator arena.
type workerPool struct {
	jobs chan func(*arena)
	wg   sync.WaitGroup
}

// arena is one worker's reusable simulation state.
type arena struct {
	ev *eventsim.Simulator
}

// simulator returns a simulator for cfg: the arena's instance reset in
// place, or a fresh build the first time (and for arena-less callers).
func (ar *arena) simulator(cfg eventsim.Config) (*eventsim.Simulator, error) {
	if ar == nil || ar.ev == nil {
		s, err := eventsim.New(cfg)
		if err != nil {
			return nil, err
		}
		if ar != nil {
			ar.ev = s
		}
		return s, nil
	}
	if err := ar.ev.Reset(cfg); err != nil {
		return nil, err
	}
	return ar.ev, nil
}

func (r *Runner) replicate(sp *Spec, rep int, ar *arena) (*replication, error) {
	if r.runRep != nil {
		return r.runRep(sp, rep)
	}
	return runReplication(sp, rep, ar)
}

func (r *Runner) parallelism() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// ensurePool starts the worker pool on first use.
func (r *Runner) ensurePool() *workerPool {
	r.poolOnce.Do(func() {
		p := &workerPool{jobs: make(chan func(*arena))}
		workers := r.parallelism()
		if r.Metrics != nil {
			r.Metrics.Workers.Set(int64(workers))
		}
		p.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer p.wg.Done()
				ar := &arena{}
				for fn := range p.jobs {
					fn(ar)
				}
			}()
		}
		r.pool = p
	})
	return r.pool
}

// Close stops the worker pool and releases its arenas. The contract —
// relied on by the public wlan.Lab facade, which exposes it directly:
//
//   - Idempotent: any number of Close calls, from any goroutines, are
//     safe; every call returns only once teardown is complete.
//   - Safe concurrently with in-flight batches: Close first marks the
//     runner closed (new Run* calls fail with ErrClosed immediately),
//     then waits for every in-flight batch to finish before stopping
//     the workers. It never aborts running simulations.
//   - A no-op on a Runner that never ran.
//
// Close must not be called from inside a batch's done callback: the
// callback runs within the batch Close is waiting on, so it would
// deadlock.
func (r *Runner) Close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.closeOnce.Do(func() {
		r.active.Wait()
		if r.pool != nil {
			close(r.pool.jobs)
			r.pool.wg.Wait()
		}
	})
}

// begin registers one in-flight batch, failing if Close has begun.
func (r *Runner) begin() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.active.Add(1)
	return nil
}

// Run executes one spec and returns its aggregate summary.
func (r *Runner) Run(ctx context.Context, spec *Spec) (*Summary, error) {
	sums, err := r.RunBatch(ctx, []*Spec{spec})
	if err != nil {
		return nil, err
	}
	return sums[0], nil
}

// RunSuite executes every scenario of a suite, fanning all replications
// of all scenarios into one worker pool.
func (r *Runner) RunSuite(ctx context.Context, su *Suite) ([]*Summary, error) {
	specs := make([]*Spec, len(su.Scenarios))
	for i := range su.Scenarios {
		specs[i] = &su.Scenarios[i]
	}
	return r.RunBatch(ctx, specs)
}

// RunBatch validates the given specs and executes all their
// replications through the shared worker pool — the repository's single
// simulation fan-out path (the experiment harness routes its sweeps
// through here too). It returns one Summary per spec, in spec order.
func (r *Runner) RunBatch(ctx context.Context, specs []*Spec) ([]*Summary, error) {
	sums := make([]*Summary, len(specs))
	err := r.RunBatchFunc(ctx, specs, func(i int, sum *Summary) error {
		sums[i] = sum
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sums, nil
}

// RunBatchFunc executes all replications of all specs through the
// worker pool and invokes done(i, summary) as each spec's last
// replication lands — in completion order, not spec order, which is
// what lets a sweep pipeline thousands of small points through one pool
// without barrier stalls. done calls are serialised (never concurrent)
// but may run on worker goroutines; a non-nil error from done aborts
// the batch, draining every remaining replication unsimulated. Specs
// that complete before any failure are still reported.
//
// Cancelling ctx aborts the batch at replication granularity: the
// replication a worker is simulating runs to completion, every
// not-yet-started replication drains unsimulated, and RunBatchFunc
// returns ctx.Err() — after all of its workers have gone quiet, so a
// cancelled call leaks nothing. A batch whose replications all
// completed before the cancellation was observed reports its results
// normally.
//
// Which error wins is deterministic in the recorded facts: a simulation
// failure beats everything, and among simulation failures the error of
// the lowest (spec, replication) index is returned whatever the
// scheduling; next a done-callback error; context cancellation is
// reported only when nothing else failed.
func (r *Runner) RunBatchFunc(ctx context.Context, specs []*Spec, done func(i int, sum *Summary) error) error {
	if err := r.begin(); err != nil {
		return err
	}
	defer r.active.Done()

	type job struct{ si, rep int }
	var jobs []job
	results := make([][]*replication, len(specs))
	remaining := make([]int, len(specs))
	for i, sp := range specs {
		if err := sp.withDefaults(); err != nil {
			name := sp.Name
			if name == "" {
				name = fmt.Sprintf("spec %d", i)
			}
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		results[i] = make([]*replication, sp.Seeds)
		remaining[i] = sp.Seeds
		for rep := 0; rep < sp.Seeds; rep++ {
			jobs = append(jobs, job{i, rep})
		}
	}

	var (
		pending  sync.WaitGroup
		mu       sync.Mutex // guards results/remaining/firstErr/firstJob/doneErr
		emitMu   sync.Mutex // serialises done callbacks, off the result lock
		failed   atomic.Bool
		canceled atomic.Bool
		firstErr error
		doneErr  error
		firstJob = len(jobs) // index of the erroring job, for determinism
	)
	process := func(ar *arena, ji int) {
		defer pending.Done()
		// Cancellation drains the job unsimulated. Unlike a simulation
		// failure there is no index to keep deterministic — whichever
		// jobs were in flight at cancel time finish, the rest never
		// start — and ctx.Err() is only reported when no simulation or
		// callback error was recorded.
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		// Fail fast: once any replication has errored, drain the
		// remaining jobs without simulating them — but only jobs above
		// the currently recorded erroring index. A job below it must
		// still run (it may itself error with a lower index), which
		// keeps the reported error exactly min-over-erroring-jobs for
		// every scheduling: the globally lowest erroring index can never
		// be skipped, because skipping requires an even lower recorded
		// one. A done-callback failure (doneErr) aborts outright: it is
		// environmental (an emit pipe, a cache disk), not tied to a job
		// index.
		if failed.Load() {
			mu.Lock()
			skip := doneErr != nil || (firstErr != nil && ji > firstJob)
			mu.Unlock()
			if skip {
				return
			}
		}
		j := jobs[ji]
		r.Metrics.begin()
		rep, err := r.replicate(specs[j.si], j.rep, ar)
		var events uint64
		if err == nil && rep != nil && rep.res != nil {
			events = rep.res.EventsFired
		}
		r.Metrics.end(events, err == nil)
		mu.Lock()
		if err != nil {
			failed.Store(true)
			// Keep the error of the lowest job index so the reported
			// failure does not depend on scheduling.
			if ji < firstJob {
				firstJob, firstErr = ji, fmt.Errorf("scenario %q replication %d: %w", specs[j.si].Name, j.rep, err)
			}
			mu.Unlock()
			return
		}
		results[j.si][j.rep] = rep
		remaining[j.si]--
		complete := remaining[j.si] == 0
		mu.Unlock()
		if !complete || done == nil {
			return
		}
		// This worker owns the spec's results now (remaining hit zero),
		// so summarising and reporting happen outside the result lock:
		// other workers storing replications never wait on the
		// callback's IO (cache writes, row emission).
		emitMu.Lock()
		err = done(j.si, summarize(specs[j.si], results[j.si]))
		emitMu.Unlock()
		//wlanvet:allow ownership transfer: remaining[si] hit zero under mu, so no other worker touches this spec's slot again; the mu release is the happens-before edge
		results[j.si] = nil // the summary owns the data now
		if err != nil {
			mu.Lock()
			if doneErr == nil {
				doneErr = err
			}
			mu.Unlock()
			failed.Store(true)
		}
	}
	pool := r.ensurePool()
	for ji := range jobs {
		ji := ji
		pending.Add(1)
		pool.jobs <- func(ar *arena) { process(ar, ji) }
	}
	pending.Wait()
	if firstErr != nil {
		return firstErr
	}
	if doneErr != nil {
		return doneErr
	}
	if canceled.Load() {
		return ctx.Err()
	}
	return nil
}

// replication is the raw outcome of one seeded run.
type replication struct {
	res         *eventsim.Result
	hiddenPairs int64
	converged   float64 // bits/s after warmup
	frames      int     // capture only
	stJain      float64 // capture only
}

// runReplication assembles and executes one seeded simulation on the
// worker's arena.
func runReplication(sp *Spec, rep int, ar *arena) (*replication, error) {
	repSeed := sp.Seed + int64(rep)
	tp, err := BuildTopology(&sp.Topology, repSeed)
	if err != nil {
		return nil, err
	}
	n := tp.N()
	policies, controller, err := scheme.Build(sp.Scheme, sp.Weights, n)
	if err != nil {
		return nil, err
	}
	cfg := eventsim.Config{
		PHY:            model.PaperPHY(),
		Topology:       tp,
		Policies:       policies,
		Controller:     controller,
		UpdatePeriod:   sim.Duration(sp.UpdatePeriod),
		Seed:           repSeed,
		RTSCTS:         sp.RTSCTS,
		FrameErrorRate: sp.FrameErrorRate,
		Arrivals:       sp.arrivals(n),
	}
	var capBuf bytes.Buffer
	var capWriter *trace.Writer
	if sp.Capture {
		capWriter = trace.NewWriter(&capBuf)
		cfg.Trace = capWriter
	}
	s, err := ar.simulator(cfg)
	if err != nil {
		return nil, err
	}
	for _, step := range sp.Churn {
		if err := s.SetActiveAt(sim.Time(step.At), step.Active); err != nil {
			return nil, err
		}
	}
	res := s.Run(sim.Duration(sp.Duration))
	out := &replication{
		res:         res,
		hiddenPairs: tp.HiddenPairCount(),
		converged:   res.ConvergedThroughput(sim.Duration(*sp.Warmup)),
	}
	if capWriter != nil {
		if err := capWriter.Close(); err != nil {
			return nil, err
		}
		// The writer already counted the frames it encoded, so the
		// capture is decoded exactly once (for the windowed fairness
		// index).
		out.frames = capWriter.Count()
		_, stJain, err := trace.ShortTermFairness(bytes.NewReader(capBuf.Bytes()), sp.CaptureWindow)
		if err != nil {
			return nil, err
		}
		out.stJain = stJain
	}
	return out, nil
}
