package scenario

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/eventsim"
	"repro/internal/model"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Runner executes scenario replications across a worker pool.
//
// Determinism contract: replication r of a spec always runs with seed
// Seed+r and its own RNG substreams — no state is shared between
// replications — and aggregation folds replication results in index
// order. The aggregate Summary is therefore bit-identical for any
// Parallelism setting, a property the golden tests pin.
type Runner struct {
	// Parallelism bounds concurrently running replications
	// (0 = GOMAXPROCS).
	Parallelism int

	// runRep overrides replication execution in tests (nil = the real
	// simulation).
	runRep func(sp *Spec, rep int) (*replication, error)
}

func (r *Runner) replicate(sp *Spec, rep int) (*replication, error) {
	if r.runRep != nil {
		return r.runRep(sp, rep)
	}
	return runReplication(sp, rep)
}

func (r *Runner) parallelism() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes one spec and returns its aggregate summary.
func (r *Runner) Run(spec *Spec) (*Summary, error) {
	sums, err := r.RunBatch([]*Spec{spec})
	if err != nil {
		return nil, err
	}
	return sums[0], nil
}

// RunSuite executes every scenario of a suite, fanning all replications
// of all scenarios into one worker pool.
func (r *Runner) RunSuite(su *Suite) ([]*Summary, error) {
	specs := make([]*Spec, len(su.Scenarios))
	for i := range su.Scenarios {
		specs[i] = &su.Scenarios[i]
	}
	return r.RunBatch(specs)
}

// RunBatch validates the given specs and executes all their
// replications in one worker pool — the repository's single simulation
// fan-out path (the experiment harness routes its sweeps through here
// too). It returns one Summary per spec, in spec order.
func (r *Runner) RunBatch(specs []*Spec) ([]*Summary, error) {
	type job struct{ si, rep int }
	var jobs []job
	results := make([][]*replication, len(specs))
	for i, sp := range specs {
		if err := sp.withDefaults(); err != nil {
			name := sp.Name
			if name == "" {
				name = fmt.Sprintf("spec %d", i)
			}
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		results[i] = make([]*replication, sp.Seeds)
		for rep := 0; rep < sp.Seeds; rep++ {
			jobs = append(jobs, job{i, rep})
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failed   atomic.Bool
		firstErr error
		firstJob = len(jobs) // index of the erroring job, for determinism
	)
	ch := make(chan int)
	workers := r.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range ch {
				// Fail fast: once any replication has errored, drain the
				// remaining jobs without simulating them — but only jobs
				// above the currently recorded erroring index. A job
				// below it must still run (it may itself error with a
				// lower index), which keeps the reported error exactly
				// min-over-erroring-jobs for every scheduling: the
				// globally lowest erroring index can never be skipped,
				// because skipping requires an even lower recorded one.
				if failed.Load() {
					mu.Lock()
					skip := firstErr != nil && ji > firstJob
					mu.Unlock()
					if skip {
						continue
					}
				}
				j := jobs[ji]
				rep, err := r.replicate(specs[j.si], j.rep)
				mu.Lock()
				if err != nil {
					failed.Store(true)
					// Keep the error of the lowest job index so the
					// reported failure does not depend on scheduling.
					if ji < firstJob {
						firstJob, firstErr = ji, fmt.Errorf("scenario %q replication %d: %w", specs[j.si].Name, j.rep, err)
					}
				} else {
					results[j.si][j.rep] = rep
				}
				mu.Unlock()
			}
		}()
	}
	for ji := range jobs {
		ch <- ji
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	sums := make([]*Summary, len(specs))
	for i, sp := range specs {
		sums[i] = summarize(sp, results[i])
	}
	return sums, nil
}

// replication is the raw outcome of one seeded run.
type replication struct {
	res         *eventsim.Result
	hiddenPairs int
	converged   float64 // bits/s after warmup
	frames      int     // capture only
	stJain      float64 // capture only
}

// runReplication assembles and executes one seeded simulation.
func runReplication(sp *Spec, rep int) (*replication, error) {
	repSeed := sp.Seed + int64(rep)
	tp, err := BuildTopology(&sp.Topology, repSeed)
	if err != nil {
		return nil, err
	}
	n := tp.N()
	policies, controller, err := scheme.Build(sp.Scheme, sp.Weights, n)
	if err != nil {
		return nil, err
	}
	cfg := eventsim.Config{
		PHY:            model.PaperPHY(),
		Topology:       tp,
		Policies:       policies,
		Controller:     controller,
		UpdatePeriod:   sim.Duration(sp.UpdatePeriod),
		Seed:           repSeed,
		RTSCTS:         sp.RTSCTS,
		FrameErrorRate: sp.FrameErrorRate,
		Arrivals:       sp.arrivals(n),
	}
	var capBuf bytes.Buffer
	var capWriter *trace.Writer
	if sp.Capture {
		capWriter = trace.NewWriter(&capBuf)
		cfg.Trace = capWriter
	}
	s, err := eventsim.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, step := range sp.Churn {
		if err := s.SetActiveAt(sim.Time(step.At), step.Active); err != nil {
			return nil, err
		}
	}
	res := s.Run(sim.Duration(sp.Duration))
	out := &replication{
		res:         res,
		hiddenPairs: len(tp.HiddenPairs()),
		converged:   res.ConvergedThroughput(sim.Duration(*sp.Warmup)),
	}
	if capWriter != nil {
		if err := capWriter.Close(); err != nil {
			return nil, err
		}
		// The writer already counted the frames it encoded, so the
		// capture is decoded exactly once (for the windowed fairness
		// index).
		out.frames = capWriter.Count()
		_, stJain, err := trace.ShortTermFairness(bytes.NewReader(capBuf.Bytes()), sp.CaptureWindow)
		if err != nil {
			return nil, err
		}
		out.stJain = stJain
	}
	return out, nil
}
