package scenario

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the golden summary fixtures")

const (
	examplesDir = "../../examples"
	goldenDir   = "../../examples/golden"
)

// exampleSuites loads every checked-in examples/*.json suite.
func exampleSuites(t *testing.T) map[string]*Suite {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(examplesDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no example specs under %s", examplesDir)
	}
	sort.Strings(paths)
	out := map[string]*Suite{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		su, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		name := filepath.Base(p)
		out[name[:len(name)-len(".json")]] = su
	}
	return out
}

// Every example suite must reproduce its committed quick-scale summary
// byte for byte, and the aggregate must be bit-identical whether the
// replications run serially or across GOMAXPROCS workers. Run with
// -update after an intentional behaviour change to regenerate the
// fixtures (CI executes the same suites through `wlansim -scenario
// -quick` and diffs the same files).
func TestExampleGoldens(t *testing.T) {
	suites := exampleSuites(t)
	for name, su := range suites {
		t.Run(name, func(t *testing.T) {
			quick := su.Quick()
			serial := Runner{Parallelism: 1}
			sums, err := serial.RunSuite(context.Background(), quick)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MarshalSummaries(sums)
			if err != nil {
				t.Fatal(err)
			}

			parallel := Runner{Parallelism: runtime.GOMAXPROCS(0)}
			psums, err := parallel.RunSuite(context.Background(), quick)
			if err != nil {
				t.Fatal(err)
			}
			pgot, err := MarshalSummaries(psums)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pgot) {
				t.Fatalf("summaries differ between Parallelism 1 and %d", runtime.GOMAXPROCS(0))
			}

			goldenPath := filepath.Join(goldenDir, name+".summary.json")
			if *update {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", goldenPath)
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("summary drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}
}

// Every golden fixture must correspond to a checked-in example, so a
// renamed suite cannot silently orphan its fixture.
func TestNoOrphanGoldens(t *testing.T) {
	suites := exampleSuites(t)
	fixtures, err := filepath.Glob(filepath.Join(goldenDir, "*.summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fixtures {
		base := filepath.Base(f)
		name := base[:len(base)-len(".summary.json")]
		if _, ok := suites[name]; !ok {
			t.Errorf("golden fixture %s has no matching examples/%s.json", base, name)
		}
	}
	if len(fixtures) != len(suites) {
		t.Errorf("%d fixtures for %d example suites", len(fixtures), len(suites))
	}
}

// The full-scale hiddennodes suite is the acceptance scenario of the
// port: its first scenario must reproduce the historical
// examples/hiddennodes output at seed 2024 (converged 20.216 Mbps for
// the 802.11 scheme on the 35-hidden-pair disc). Quick mode cannot pin
// this (different duration), so pin the spec fields that define it.
func TestHiddennodesSpecPinsHistoricalConfig(t *testing.T) {
	su := exampleSuites(t)["hiddennodes"]
	if su == nil {
		t.Fatal("hiddennodes example missing")
	}
	sp := su.Scenarios[0]
	if sp.Topology.Kind != TopoDisc || sp.Topology.N != 30 || sp.Topology.Radius != 16 || sp.Topology.Seed != 2024 {
		t.Errorf("topology drifted from the historical config: %+v", sp.Topology)
	}
	if sp.Seed != 2024 || sp.Seeds != 1 {
		t.Errorf("seeding drifted: seed=%d seeds=%d", sp.Seed, sp.Seeds)
	}
	tp, err := BuildTopology(&sp.Topology, sp.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if hp := len(tp.HiddenPairs()); hp != 35 {
		t.Errorf("hidden pairs = %d, want the historical 35", hp)
	}
}

func ExampleMarshalSummaries() {
	sums := []*Summary{{Name: "demo", Scheme: SchemeDCF}}
	out, _ := MarshalSummaries(sums)
	fmt.Println(len(out) > 0)
	// Output: true
}
