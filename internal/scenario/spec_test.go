package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

const minimalSpec = `{"name":"t","topology":{"kind":"connected","n":5}}`

func durp(d Duration) *Duration { return &d }

func TestDecodeMinimalSpec(t *testing.T) {
	su, err := Decode([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(su.Scenarios) != 1 {
		t.Fatalf("got %d scenarios", len(su.Scenarios))
	}
	sp := su.Scenarios[0]
	if sp.Scheme != SchemeDCF || sp.Seeds != 1 || sp.Seed != 1 {
		t.Errorf("defaults not applied: %+v", sp)
	}
	if sp.Duration != Duration(30*time.Second) || sp.Warmup == nil || *sp.Warmup != Duration(15*time.Second) {
		t.Errorf("duration defaults wrong: %+v", sp)
	}
	if sp.Topology.Radius != 8 {
		t.Errorf("connected radius default = %v", sp.Topology.Radius)
	}
}

func TestDecodeSuite(t *testing.T) {
	data := `{
	  "name": "pair",
	  "scenarios": [
	    {"name": "a", "topology": {"kind": "connected", "n": 3}},
	    {"name": "b", "scheme": "wTOP-CSMA", "topology": {"kind": "disc", "n": 4, "seed": 9},
	     "traffic": [{"model": "poisson", "rate": 50}], "duration": "10s", "warmup": "2s", "seeds": 3}
	  ]
	}`
	su, err := Decode([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(su.Scenarios) != 2 || su.Name != "pair" {
		t.Fatalf("bad suite: %+v", su)
	}
	b := su.Scenarios[1]
	if b.Topology.Radius != 16 || b.Seeds != 3 || b.Duration != Duration(10*time.Second) {
		t.Errorf("suite member defaults wrong: %+v", b)
	}
}

// Every malformed or hostile input must produce an error — not a panic,
// not a silent zero-value run.
func TestDecodeRejectsHostileInput(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ``},
		{"not json", `~~~`},
		{"wrong top-level type", `[1,2,3]`},
		{"empty suite", `{"scenarios":[]}`},
		{"unknown field", `{"name":"x","topology":{"kind":"connected","n":5},"bogus":1}`},
		{"unknown topology kind", `{"topology":{"kind":"torus","n":5}}`},
		{"zero stations", `{"topology":{"kind":"connected","n":0}}`},
		{"negative stations", `{"topology":{"kind":"connected","n":-3}}`},
		{"absurd stations", `{"topology":{"kind":"connected","n":100001}}`},
		{"unknown scheme", `{"scheme":"ALOHA","topology":{"kind":"connected","n":5}}`},
		{"negative duration", `{"duration":"-5s","topology":{"kind":"connected","n":5}}`},
		{"absurd duration", `{"duration":"9000h","topology":{"kind":"connected","n":5}}`},
		{"absurd replication count", `{"seeds":20000,"topology":{"kind":"connected","n":5}}`},
		{"garbage duration", `{"duration":"fast","topology":{"kind":"connected","n":5}}`},
		{"duration wrong type", `{"duration":{},"topology":{"kind":"connected","n":5}}`},
		{"warmup past duration", `{"duration":"5s","warmup":"6s","topology":{"kind":"connected","n":5}}`},
		{"negative seeds", `{"seeds":-1,"topology":{"kind":"connected","n":5}}`},
		{"absurd seeds", `{"seeds":100000,"topology":{"kind":"connected","n":5}}`},
		{"error rate one", `{"frame_error_rate":1,"topology":{"kind":"connected","n":5}}`},
		{"error rate negative", `{"frame_error_rate":-0.1,"topology":{"kind":"connected","n":5}}`},
		{"weights wrong length", `{"scheme":"wTOP-CSMA","weights":[1,2],"topology":{"kind":"connected","n":5}}`},
		{"weights wrong scheme", `{"weights":[1,1,1,1,1],"topology":{"kind":"connected","n":5}}`},
		{"weight zero", `{"scheme":"wTOP-CSMA","weights":[1,1,1,1,0],"topology":{"kind":"connected","n":5}}`},
		{"traffic wrong length", `{"traffic":[{"model":"poisson","rate":1},{"model":"poisson","rate":1}],"topology":{"kind":"connected","n":5}}`},
		{"traffic unknown model", `{"traffic":[{"model":"fractal"}],"topology":{"kind":"connected","n":5}}`},
		{"poisson without rate", `{"traffic":[{"model":"poisson"}],"topology":{"kind":"connected","n":5}}`},
		{"poisson absurd rate", `{"traffic":[{"model":"poisson","rate":1e30}],"topology":{"kind":"connected","n":5}}`},
		{"onoff without phases", `{"traffic":[{"model":"onoff","rate":10}],"topology":{"kind":"connected","n":5}}`},
		{"negative queue cap", `{"traffic":[{"model":"poisson","rate":1,"queue_cap":-2}],"topology":{"kind":"connected","n":5}}`},
		{"churn beyond duration", `{"duration":"5s","churn":[{"at":"6s","active":1}],"topology":{"kind":"connected","n":5}}`},
		{"churn active too high", `{"churn":[{"at":"1s","active":9}],"topology":{"kind":"connected","n":5}}`},
		{"churn negative active", `{"churn":[{"at":"1s","active":-1}],"topology":{"kind":"connected","n":5}}`},
		{"custom without points", `{"topology":{"kind":"custom"}}`},
		{"custom contradictory n", `{"topology":{"kind":"custom","n":3,"points":[{"x":1,"y":1}]}}`},
		{"custom point out of range", `{"topology":{"kind":"custom","points":[{"x":40,"y":0}]}}`},
		{"points on non-custom", `{"topology":{"kind":"connected","n":2,"points":[{"x":1,"y":1}]}}`},
		{"connected radius too large", `{"topology":{"kind":"connected","n":5,"radius":13}}`},
		{"disc radius too large", `{"topology":{"kind":"disc","n":5,"radius":100}}`},
		{"clusters separation too large", `{"topology":{"kind":"clusters","n":4,"separation":40}}`},
		{"clusters spread past decode radius", `{"topology":{"kind":"clusters","n":120}}`},
		{"duplicate names", `{"scenarios":[{"name":"x","topology":{"kind":"connected","n":2}},{"name":"x","topology":{"kind":"connected","n":2}}]}`},
		{"trailing garbage", minimalSpec + `{"another":1}`},
		{"update period too small", `{"update_period":"1us","topology":{"kind":"connected","n":5}}`},
		{"update period past duration", `{"duration":"2s","update_period":"3s","topology":{"kind":"connected","n":5}}`},
		{"capture window negative", `{"capture_window":-1,"topology":{"kind":"connected","n":5}}`},
	}
	for _, tc := range cases {
		if _, err := Decode([]byte(tc.data)); err == nil {
			t.Errorf("%s: Decode accepted hostile input", tc.name)
		}
	}
}

// Custom-point topologies out of AP range are rejected at build time.
func TestBuildTopologyCustomValidates(t *testing.T) {
	su, err := Decode([]byte(`{"topology":{"kind":"custom","points":[{"x":3,"y":4},{"x":-3,"y":4}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	tp, err := BuildTopology(&su.Scenarios[0].Topology, 1)
	if err != nil || tp.N() != 2 {
		t.Fatalf("valid custom topology rejected: %v", err)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	for _, d := range []Duration{0, Duration(time.Millisecond), Duration(90 * time.Second), Duration(time.Hour)} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var got Duration
		if err := json.Unmarshal(b, &got); err != nil || got != d {
			t.Errorf("round trip %v -> %s -> %v (%v)", time.Duration(d), b, time.Duration(got), err)
		}
	}
	var secs Duration
	if err := json.Unmarshal([]byte(`2.5`), &secs); err != nil || secs != Duration(2500*time.Millisecond) {
		t.Errorf("numeric seconds: %v, %v", time.Duration(secs), err)
	}
}

// Quick must preserve churn proportions and never lengthen a run.
func TestQuickScaling(t *testing.T) {
	sp := Spec{
		Name:     "q",
		Topology: TopologySpec{Kind: TopoConnected, N: 4},
		Duration: Duration(180 * time.Second),
		Warmup:   durp(Duration(90 * time.Second)),
		Seeds:    5,
		Churn:    []ChurnStep{{At: Duration(60 * time.Second), Active: 2}},
	}
	if err := sp.withDefaults(); err != nil {
		t.Fatal(err)
	}
	q := sp.Quick()
	if q.Duration != Duration(3*time.Second) || q.Seeds != 2 {
		t.Errorf("quick scale: %+v", q)
	}
	if q.Warmup == nil || *q.Warmup != Duration(1500*time.Millisecond) {
		t.Errorf("warmup not rescaled: %v", q.Warmup)
	}
	if q.Churn[0].At != Duration(time.Second) {
		t.Errorf("churn not rescaled: %v", time.Duration(q.Churn[0].At))
	}
	if sp.Churn[0].At != Duration(60*time.Second) {
		t.Error("Quick mutated the original spec's churn")
	}
	if err := q.withDefaults(); err != nil {
		t.Errorf("quick spec does not validate: %v", err)
	}
	// Already-short specs pass through unchanged.
	short := Spec{Topology: TopologySpec{Kind: TopoConnected, N: 2}, Duration: Duration(2 * time.Second), Warmup: durp(Duration(time.Second))}
	if got := short.Quick(); got.Duration != short.Duration || *got.Warmup != *short.Warmup {
		t.Errorf("short spec rescaled: %+v", got)
	}
	// An explicit controller window wider than the quick duration must be
	// rescaled too, so any spec valid at full scale stays valid at quick
	// scale.
	wide := Spec{
		Topology:     TopologySpec{Kind: TopoConnected, N: 2},
		Duration:     Duration(60 * time.Second),
		UpdatePeriod: Duration(10 * time.Second),
	}
	if err := wide.withDefaults(); err != nil {
		t.Fatal(err)
	}
	qw := wide.Quick()
	if err := qw.withDefaults(); err != nil {
		t.Errorf("quick-scaled update_period does not validate: %v", err)
	}
	if qw.UpdatePeriod != Duration(500*time.Millisecond) {
		t.Errorf("update_period not rescaled proportionally: %v", time.Duration(qw.UpdatePeriod))
	}
}

// Quick scales Warmup and Duration independently through float64
// truncation, so the warmup < duration and churn ≤ duration invariants
// need an explicit clamp: any spec that validated at full scale must
// stay valid at quick scale, including durations barely above the 3 s
// quick cap where the scaled warmup lands within rounding distance of
// the new duration.
func TestQuickClampsSmallDurations(t *testing.T) {
	quick := Duration(3 * time.Second)
	durations := []Duration{
		quick + 1,
		quick + Duration(time.Nanosecond),
		quick + Duration(3*time.Nanosecond),
		quick + Duration(time.Microsecond),
		quick + Duration(333*time.Millisecond),
		Duration(3141592653),
		Duration(4 * time.Second),
		Duration(5*time.Second) - 1,
		Duration(24 * time.Hour),
	}
	for _, d := range durations {
		t.Run(time.Duration(d).String(), func(t *testing.T) {
			sp := Spec{
				Name:     "edge",
				Topology: TopologySpec{Kind: TopoConnected, N: 2},
				Duration: d,
				Warmup:   durp(d - 1), // as close to the invariant edge as valid
				Churn: []ChurnStep{
					{At: 0, Active: 1},
					{At: d - 1, Active: 2},
					{At: d, Active: 2},
				},
			}
			if err := sp.withDefaults(); err != nil {
				t.Fatalf("full-scale spec invalid: %v", err)
			}
			q := sp.Quick()
			if err := q.withDefaults(); err != nil {
				t.Errorf("quick-scaled spec no longer validates: %v", err)
			}
			if *q.Warmup >= q.Duration {
				t.Errorf("warmup %v >= duration %v after quick scaling",
					time.Duration(*q.Warmup), time.Duration(q.Duration))
			}
			for i, c := range q.Churn {
				if c.At > q.Duration {
					t.Errorf("churn[%d].at %v > duration %v after quick scaling",
						i, time.Duration(c.At), time.Duration(q.Duration))
				}
			}
		})
	}
}

// An explicit "warmup": 0 means "average the whole run" and must not be
// silently replaced by the Duration/2 default.
func TestExplicitZeroWarmup(t *testing.T) {
	su, err := Decode([]byte(`{"duration":"10s","warmup":"0s","topology":{"kind":"connected","n":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if w := su.Scenarios[0].Warmup; w == nil || *w != 0 {
		t.Errorf("explicit zero warmup rewritten to %v", w)
	}
	unset, err := Decode([]byte(`{"duration":"10s","topology":{"kind":"connected","n":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if w := unset.Scenarios[0].Warmup; w == nil || *w != Duration(5*time.Second) {
		t.Errorf("unset warmup default = %v, want 5s", w)
	}
}

// A malformed suite (top-level "scenarios" present) must report the
// suite parse error, not the misleading bare-Spec fallback error.
func TestDecodeSuiteErrorNamesRealProblem(t *testing.T) {
	_, err := Decode([]byte(`{"scenarios":[{"nmae":"x","topology":{"kind":"connected","n":2}}]}`))
	if err == nil {
		t.Fatal("typo'd suite accepted")
	}
	if !strings.Contains(err.Error(), "nmae") {
		t.Errorf("error does not name the unknown field: %v", err)
	}
}

// FuzzSpecDecode: Decode must never panic and must either return a
// validated suite or an error, whatever bytes arrive. Run with
// `go test -fuzz=FuzzSpecDecode ./internal/scenario`.
func FuzzSpecDecode(f *testing.F) {
	seeds := []string{
		minimalSpec,
		`{"scenarios":[{"name":"a","topology":{"kind":"connected","n":3}}]}`,
		`{"name":"h","scheme":"TORA-CSMA","topology":{"kind":"disc","n":30,"radius":16,"seed":2024},"duration":"90s","seeds":2}`,
		`{"topology":{"kind":"clusters","n":4,"separation":30},"rtscts":true}`,
		`{"topology":{"kind":"custom","points":[{"x":1,"y":2},{"x":-3,"y":-4}]},"frame_error_rate":0.1}`,
		`{"scheme":"wTOP-CSMA","weights":[1,1,2],"topology":{"kind":"connected","n":3}}`,
		`{"traffic":[{"model":"poisson","rate":100,"queue_cap":10}],"topology":{"kind":"connected","n":5}}`,
		`{"traffic":[{"model":"onoff","rate":400,"on_mean":"200ms","off_mean":"600ms"}],"topology":{"kind":"connected","n":2}}`,
		`{"churn":[{"at":"0s","active":1},{"at":"10s","active":2}],"topology":{"kind":"connected","n":2}}`,
		`{"capture":true,"capture_window":30,"topology":{"kind":"connected","n":10}}`,
		`{"duration":2.5,"topology":{"kind":"connected","n":1}}`,
		`{"duration":1e999,"topology":{"kind":"connected","n":1}}`,
		`{"scenarios":[{"topology":{"kind":"disc","n":1,"radius":1e308}}]}`,
		``,
		`null`,
		`[]`,
		`{"scenarios":null}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		su, err := Decode(data)
		if err != nil {
			if su != nil {
				t.Error("non-nil suite alongside an error")
			}
			return
		}
		// A decoded suite must be fully validated: re-validating is a
		// no-op and every scenario can build its topology description.
		if len(su.Scenarios) == 0 {
			t.Fatal("Decode returned an empty suite without error")
		}
		for i := range su.Scenarios {
			sp := &su.Scenarios[i]
			if err := sp.withDefaults(); err != nil {
				t.Fatalf("validated spec fails revalidation: %v", err)
			}
			if sp.Topology.stationCount() < 1 || sp.Topology.stationCount() > MaxStations {
				t.Fatalf("station count %d escaped validation", sp.Topology.stationCount())
			}
			if _, err := BuildTopology(&sp.Topology, 1); err != nil {
				// Custom topologies may legitimately fail geometric
				// validation; that must surface as an error, which it
				// just did.
				if !strings.Contains(err.Error(), "topo:") {
					t.Fatalf("unexpected BuildTopology error: %v", err)
				}
			}
		}
	})
}
