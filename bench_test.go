// Package repro's benchmark suite regenerates every table and figure of
// the paper at reduced scale (see EXPERIMENTS.md for paper-scale runs via
// cmd/experiments). Each benchmark reports the headline metric of its
// artefact via b.ReportMetric, so `go test -bench . -benchmem` doubles as
// a one-shot reproduction summary, plus ablation benches for the design
// choices called out in DESIGN.md and micro-benchmarks of the kernel.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/experiment"
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/slotsim"
	"repro/internal/sweep"
	"repro/internal/topo"
	"repro/wlan"
)

// benchOptions keeps per-iteration cost around a second.
func benchOptions() experiment.Options {
	return experiment.Options{
		Duration: 8 * sim.Second,
		Warmup:   4 * sim.Second,
		Seeds:    1,
		Nodes:    []int{10, 40},
	}
}

// maxColMbps extracts the maximum of a table column for metric
// reporting — for sweep tables this is the curve's peak.
func maxColMbps(tb *experiment.Table, col int) float64 {
	best := 0.0
	for _, row := range tb.Rows {
		if col >= len(row) {
			continue
		}
		var v float64
		if _, err := fmt.Sscan(row[col], &v); err != nil {
			continue
		}
		if v > best {
			best = v
		}
	}
	return best
}

// runExperiment is the shared bench body for table-producing runners.
func runExperiment(b *testing.B, runner experiment.Runner, metricCol int) {
	b.Helper()
	o := benchOptions()
	var tb *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = runner(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if tb != nil {
		b.ReportMetric(maxColMbps(tb, metricCol), "Mbps")
	}
}

// BenchmarkFig1 regenerates Fig. 1 (IdleSense vs 802.11, ± hidden nodes).
func BenchmarkFig1(b *testing.B) { runExperiment(b, experiment.Fig1, 1) }

// BenchmarkFig2 regenerates Fig. 2 (throughput vs log p, connected).
func BenchmarkFig2(b *testing.B) { runExperiment(b, experiment.Fig2, 1) }

// BenchmarkTable2 regenerates Table II (weighted fairness).
func BenchmarkTable2(b *testing.B) {
	o := benchOptions()
	o.Duration, o.Warmup = 20*sim.Second, 10*sim.Second
	var tb *experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = experiment.Table2(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(maxColMbps(tb, 2), "Mbps-total")
}

// BenchmarkFig3 regenerates Fig. 3 (all four schemes, connected).
func BenchmarkFig3(b *testing.B) { runExperiment(b, experiment.Fig3, 1) }

// BenchmarkFig4 regenerates Fig. 4 (throughput vs log p, hidden).
func BenchmarkFig4(b *testing.B) { runExperiment(b, experiment.Fig4, 1) }

// BenchmarkFig5 regenerates Fig. 5 (RandomReset vs p0, hidden).
func BenchmarkFig5(b *testing.B) { runExperiment(b, experiment.Fig5, 1) }

// BenchmarkFig6 regenerates Fig. 6 (four schemes, 16 m disc).
func BenchmarkFig6(b *testing.B) { runExperiment(b, experiment.Fig6, 1) }

// BenchmarkFig7 regenerates Fig. 7 (four schemes, 20 m disc).
func BenchmarkFig7(b *testing.B) { runExperiment(b, experiment.Fig7, 1) }

// BenchmarkTable3 regenerates Table III (idle slots and throughput).
func BenchmarkTable3(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table3(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Figs. 8–9 (wTOP-CSMA under churn).
func BenchmarkFig8(b *testing.B) { runExperiment(b, experiment.Fig8and9, 2) }

// BenchmarkFig10 regenerates Figs. 10–11 (TORA-CSMA under churn).
func BenchmarkFig10(b *testing.B) { runExperiment(b, experiment.Fig10and11, 2) }

// BenchmarkFig12 regenerates Fig. 12 (fixed-point geometry; analytic).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig12(context.Background(), experiment.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 regenerates Fig. 13 (RandomReset vs p0, connected,
// model + simulation).
func BenchmarkFig13(b *testing.B) { runExperiment(b, experiment.Fig13, 1) }

// BenchmarkConvergence regenerates the convergence extension table
// (time to 90% of optimum for both controllers).
func BenchmarkConvergence(b *testing.B) {
	o := benchOptions()
	o.Duration, o.Warmup = 30*sim.Second, 15*sim.Second
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Convergence(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTSCTS regenerates the RTS/CTS extension comparison.
func BenchmarkRTSCTS(b *testing.B) {
	runExperiment(b, experiment.RTSCTSComparison, 1)
}

// BenchmarkLadder regenerates the baseline-policy ladder.
func BenchmarkLadder(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.BaselineLadder(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEngines compares the event-driven engine against the
// slotted engine on the identical connected workload — the cost of
// hidden-node capability.
func BenchmarkAblationEngines(b *testing.B) {
	const n = 20
	const p = 0.02
	b.Run("eventsim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ps := make([]mac.Policy, n)
			for j := range ps {
				ps[j] = mac.NewPPersistent(1, p)
			}
			s, err := eventsim.New(eventsim.Config{
				Topology: topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii()),
				Policies: ps,
				Seed:     int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			res := s.Run(5 * sim.Second)
			b.ReportMetric(res.ThroughputMbps(), "Mbps")
		}
	})
	b.Run("slotsim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ps := make([]mac.Policy, n)
			for j := range ps {
				ps[j] = mac.NewPPersistent(1, p)
			}
			s, err := slotsim.New(slotsim.Config{Policies: ps, Seed: int64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			res := s.Run(5 * sim.Second)
			b.ReportMetric(res.ThroughputMbps(), "Mbps")
		}
	})
}

// BenchmarkSlotSimBianchi measures the slotted engine in the regime the
// bucketed backoff tracker targets: many DCF (window-policy) stations,
// where the pre-tracker loop paid an O(N) counter scan and an O(N)
// decrement per busy period and a per-station resume pass on top.
func BenchmarkSlotSimBianchi(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ps := make([]mac.Policy, n)
				for j := range ps {
					ps[j] = mac.NewStandardDCF(16, 1024)
				}
				s, err := slotsim.New(slotsim.Config{Policies: ps, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				res := s.Run(5 * sim.Second)
				b.ReportMetric(res.ThroughputMbps(), "Mbps")
			}
		})
	}
}

// BenchmarkTopologyBuild measures topology construction across the
// scale tier. paper512 is the old dense cap with full adjacency
// materialised; circle100k is the slotted tier's fully connected layout,
// answered by the bounding-box fast path without ever building
// neighbour lists; disc100k spreads 100k stations over a 2 km disc and
// materialises the sparse CSR adjacency the grid index prunes down to
// O(n·degree).
func BenchmarkTopologyBuild(b *testing.B) {
	b.Run("paper512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng := sim.NewRNG(int64(i + 1))
			tp := topo.New(topo.Point{}, topo.UniformDisc(512, 16, rng), topo.PaperRadii())
			if err := tp.EnsureAdjacency(topo.DefaultAdjacencyBudget); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("circle100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tp := topo.New(topo.Point{}, topo.CircleEdge(100_000, 8), topo.PaperRadii())
			if !tp.FullyConnected() || tp.HiddenPairCount() != 0 {
				b.Fatal("circle topology must be fully connected")
			}
		}
	})
	b.Run("disc100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng := sim.NewRNG(int64(i + 1))
			tp := topo.New(topo.Point{}, topo.UniformDisc(100_000, 2000, rng), topo.PaperRadii())
			if err := tp.EnsureAdjacency(topo.DefaultAdjacencyBudget); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSlotSimScaleTier runs the slotted engine at the 100k-station
// scale tier: population-scaled fixed windows (W = n keeps the
// aggregate attempt rate near two per slot), every counter in the
// tracker's widened ring, and a per-busy-period cost that no longer
// depends on n. The dominant per-op cost is arena setup — seeding 100k
// per-station RNGs — which is exactly the scale-tier overhead worth
// tracking.
func BenchmarkSlotSimScaleTier(b *testing.B) {
	const n = 100_000
	for i := 0; i < b.N; i++ {
		ps := make([]mac.Policy, n)
		for j := range ps {
			ps[j] = mac.NewStandardDCF(n, n)
		}
		s, err := slotsim.New(slotsim.Config{Policies: ps, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		res := s.Run(2 * sim.Second)
		b.ReportMetric(res.ThroughputMbps(), "Mbps")
	}
}

// BenchmarkAblationGains compares Kiefer–Wolfowitz gain schedules on the
// analytic closed loop: the paper's (1/k, k^-1/3) against a faster-
// annealing and a slower-annealing alternative.
func BenchmarkAblationGains(b *testing.B) {
	schedules := map[string]core.PowerGains{
		"paper-a1.0-b0.33": core.PaperGains(),
		"a1.0-b0.45":       {A0: 1, AExp: 1, B0: 1, BExp: 0.45},
		"a0.9-b0.35":       {A0: 1, AExp: 0.9, B0: 1, BExp: 0.35},
	}
	mdl := model.PPersistent{PHY: model.PaperPHY()}
	w := model.UnitWeights(20)
	opt := mdl.MaxThroughput(w)
	for name, g := range schedules {
		g := g
		b.Run(name, func(b *testing.B) {
			if err := g.Validate(); err != nil {
				b.Fatal(err)
			}
			var final float64
			for i := 0; i < b.N; i++ {
				rng := sim.NewRNG(int64(i + 1))
				ctl := core.NewWTOP(core.WTOPConfig{Gains: g, Scale: mdl.PHY.BitRate})
				for k := 0; k < 400; k++ {
					s := mdl.SystemThroughput(ctl.Control().P, w)
					ctl.OnWindowEnd(s * (1 + 0.05*rng.NormFloat64()))
				}
				final = mdl.SystemThroughput(ctl.PVal(), w)
			}
			b.ReportMetric(100*final/opt, "%-of-optimum")
		})
	}
}

// BenchmarkAblationUpdatePeriod sweeps the controller window Δ — the
// variance/iteration-rate trade-off discussed in Section III-C.
func BenchmarkAblationUpdatePeriod(b *testing.B) {
	for _, period := range []sim.Duration{50 * sim.Millisecond, 250 * sim.Millisecond, 1000 * sim.Millisecond} {
		period := period
		b.Run(period.String(), func(b *testing.B) {
			var conv float64
			for i := 0; i < b.N; i++ {
				phy := model.PaperPHY()
				ps := make([]mac.Policy, 20)
				for j := range ps {
					ps[j] = mac.NewPPersistent(1, 0.1)
				}
				s, err := slotsim.New(slotsim.Config{
					PHY:          phy,
					Policies:     ps,
					Controller:   core.NewWTOP(core.WTOPConfig{Scale: phy.BitRate}),
					UpdatePeriod: period,
					Seed:         int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				res := s.Run(60 * sim.Second)
				conv = res.ThroughputSeries.MeanAfter(sim.Time(30 * sim.Second))
			}
			b.ReportMetric(conv/1e6, "Mbps")
		})
	}
}

// BenchmarkEventQueue measures the kernel's event scheduling throughput.
// Steady state must report 0 allocs/op: events are pooled and the closure
// is bound once (see the AllocsPerRun guardrails in internal/sim).
func BenchmarkEventQueue(b *testing.B) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(1)
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < b.N {
			s.After(sim.Duration(rng.Intn(1000)+1), reschedule)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < 64 && i < b.N; i++ {
		s.After(sim.Duration(rng.Intn(1000)+1), reschedule)
	}
	s.Run()
}

// BenchmarkEventQueueArg measures the allocation-free AfterArg path the
// simulators' hot loops use: a pre-bound func value plus a pointer
// argument instead of a fresh closure per event.
func BenchmarkEventQueueArg(b *testing.B) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(1)
	type payload struct{ count int }
	arg := &payload{}
	var reschedule func(any)
	reschedule = func(a any) {
		p := a.(*payload)
		p.count++
		if p.count < b.N {
			s.AfterArg(sim.Duration(rng.Intn(1000)+1), reschedule, a)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < 64 && i < b.N; i++ {
		s.AfterArg(sim.Duration(rng.Intn(1000)+1), reschedule, arg)
	}
	s.Run()
}

// BenchmarkEventCancel measures the schedule→cancel→collect cycle that
// dominates frozen-backoff churn in eventsim.
func BenchmarkEventCancel(b *testing.B) {
	s := sim.NewScheduler()
	noop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := s.After(1, noop)
		r.Cancel()
		s.Step()
	}
}

// BenchmarkGeometricDraw compares the direct geometric backoff draw with
// the batched variant PPersistent uses.
func BenchmarkGeometricDraw(b *testing.B) {
	const p = 0.02
	b.Run("direct", func(b *testing.B) {
		rng := sim.NewRNG(1)
		b.ReportAllocs()
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += rng.Geometric(p)
		}
		_ = acc
	})
	b.Run("batched", func(b *testing.B) {
		rng := sim.NewRNG(1)
		var batch sim.FloatBatch
		batch.Bind(rng)
		b.ReportAllocs()
		acc := 0
		for i := 0; i < b.N; i++ {
			acc += sim.GeometricFromUniform(batch.Next(), p)
		}
		_ = acc
	})
}

// BenchmarkEventSimThroughput measures wall-clock cost per simulated
// second of the full event-driven stack at N = 40.
func BenchmarkEventSimThroughput(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := wlan.Run(wlan.Config{
			Topology: wlan.Connected(40),
			Scheme:   wlan.TORACSMA,
			Duration: 2e9, // 2 s simulated
			Seed:     int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		events += res.EventsFired
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// BenchmarkSweepSmoke streams the checked-in CI smoke sweep (16 points
// × 2 replications of 500 ms runs) through the pipelined executor —
// the end-to-end cost of the sweep path: expansion, the shared worker
// pool with per-worker simulator arenas, in-order JSONL emission.
func BenchmarkSweepSmoke(b *testing.B) {
	data, err := os.ReadFile("examples/sweeps/smoke.json")
	if err != nil {
		b.Fatal(err)
	}
	g, err := sweep.Decode(data)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		st, err := (&sweep.Runner{}).Stream(context.Background(), g, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if st.Simulated != st.Total {
			b.Fatalf("expected all %d points simulated, got %+v", st.Total, st)
		}
	}
}

// BenchmarkSweep120 pipelines a 120-point grid of fast (100 ms, one
// seed) runs — the PR-3 acceptance shape, dominated by per-point
// overhead rather than simulation, which is exactly what arena reuse
// and barrier-free scheduling target.
func BenchmarkSweep120(b *testing.B) {
	g := &sweep.Grid{
		Name: "bench120",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected},
			Duration: scenario.Duration(100e6),
			Seeds:    1,
		},
		Axes: []sweep.Axis{
			{Field: sweep.FieldScheme, Values: sweep.Strings("802.11", "IdleSense", "wTOP-CSMA", "TORA-CSMA")},
			{Field: sweep.FieldNodes, Values: sweep.Ints(2, 3, 4, 5, 6)},
			{Field: sweep.FieldFrameErrorRate, Values: sweep.Floats(0, 0.05, 0.1)},
			{Field: sweep.FieldRTSCTS, Values: sweep.Bools(false, true)},
		},
	}
	for i := 0; i < b.N; i++ {
		st, err := (&sweep.Runner{}).Stream(context.Background(), g, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if st.Simulated != 120 {
			b.Fatalf("expected 120 simulated points, got %+v", st)
		}
	}
}

// BenchmarkScenarioReplications measures the runner's steady state —
// one spec, many replications through the persistent pool with arena
// reuse — at a single worker so the per-replication cost is visible.
func BenchmarkScenarioReplications(b *testing.B) {
	r := scenario.Runner{Parallelism: 1}
	defer r.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := &scenario.Spec{
			Name:     "bench",
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected, N: 10},
			Duration: scenario.Duration(200e6),
			Seeds:    8,
		}
		if _, err := r.Run(context.Background(), sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameCodec measures Marshal+Decode of the wire format.
func BenchmarkFrameCodec(b *testing.B) {
	ack := &frame.ACK{
		Receiver: 7,
		Sequence: 1234,
		Control:  frame.Control{Scheme: frame.ControlWTOP, P: 0.0153},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire := frame.Marshal(ack)
		if _, err := frame.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFixedPoint measures the RandomReset fixed-point solver.
func BenchmarkFixedPoint(b *testing.B) {
	rr := model.RandomReset{PHY: model.PaperPHY(), Backoff: model.PaperBackoff(), N: 40}
	for i := 0; i < b.N; i++ {
		if _, _, err := rr.FixedPointJP(i%7, float64(i%11)/10); err != nil {
			b.Fatal(err)
		}
	}
}
