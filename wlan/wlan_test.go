package wlan

import (
	"testing"
	"time"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{Topology: Connected(5), Duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes == 0 {
		t.Error("no successes")
	}
	if res.ThroughputMbps() <= 0 {
		t.Error("zero throughput")
	}
}

func TestAllSchemesRun(t *testing.T) {
	for _, sch := range []Scheme{DCF, IdleSense, WTOPCSMA, TORACSMA} {
		res, err := Run(Config{Topology: Connected(6), Scheme: sch, Duration: 3 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", sch, err)
		}
		if res.Successes == 0 {
			t.Errorf("%s: no successes", sch)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("missing topology accepted")
	}
	if _, err := Run(Config{Topology: Connected(3), Scheme: "bogus"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Run(Config{Topology: Connected(3), Scheme: WTOPCSMA, Weights: []float64{1}}); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := Run(Config{Topology: Connected(3), Scheme: DCF, Weights: []float64{1, 1, 1}}); err == nil {
		t.Error("weights with non-wTOP scheme accepted")
	}
}

func TestHiddenDiscProducesHiddenPairsAndValidates(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 5; seed++ {
		tp := HiddenDisc(30, 16, seed)
		if err := tp.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(tp.HiddenPairs()) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no hidden pairs in any draw")
	}
	// Radius 20 projection keeps stations connected to the AP.
	tp := HiddenDisc(30, 20, 1)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomTopology(t *testing.T) {
	tp := Custom([]Point{{X: 4}, {X: -4}})
	if tp.N() != 2 || !tp.FullyConnected() {
		t.Error("custom topology wrong")
	}
}

func TestChurnThroughFacade(t *testing.T) {
	s, err := New(Config{Topology: Connected(10), Scheme: WTOPCSMA, Duration: 6 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetActiveAt(2*time.Second, 4); err != nil {
		t.Fatal(err)
	}
	res := s.Run(4 * time.Second)
	if res.Successes == 0 {
		t.Error("no successes")
	}
	if s.Warmup() != 3*time.Second {
		t.Errorf("Warmup = %v, want Duration/2", s.Warmup())
	}
}

func TestAnalyticHelpers(t *testing.T) {
	p := OptimalAttemptProbability(20)
	if p <= 0 || p >= 1 {
		t.Errorf("p* = %v", p)
	}
	if s := MaxThroughputMbps(20); s < 20 || s > 28 {
		t.Errorf("S* = %v Mbps", s)
	}
	if d := DCFThroughputMbps(40); d <= 0 || d >= MaxThroughputMbps(40) {
		t.Errorf("DCF prediction %v Mbps not below optimum", d)
	}
}
