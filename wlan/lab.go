package wlan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/slotsim"
	"repro/internal/sweep"
)

// Lab is the long-lived entry point of the package: one construction,
// validation and fan-out path behind three run shapes.
//
//   - Run executes one simulation from a Config on either engine.
//   - RunScenario executes a replicated declarative Scenario and
//     aggregates mean/CI summaries (RunSuite batches several).
//   - Sweep expands a parameter Grid and streams one point at a time,
//     with optional caching and sharding; SweepStream writes the
//     canonical JSONL rows instead.
//
// A Lab owns a persistent simulation worker pool (scenario.Runner):
// workers start lazily on the first scenario or sweep and are reused —
// with their warmed simulator arenas — until Close. All methods are
// safe for concurrent use, accept a context.Context, and return
// bit-identical results to one-shot calls whatever the parallelism or
// reuse pattern. The zero Lab is NOT ready; use NewLab.
type Lab struct {
	runner  *scenario.Runner
	metrics *Metrics

	mu     sync.Mutex
	closed bool
}

// LabOption configures NewLab.
type LabOption func(*Lab)

// WithParallelism bounds the Lab's concurrently running replications
// (0, the default, means GOMAXPROCS). Aggregates are bit-identical for
// any setting.
func WithParallelism(n int) LabOption {
	return func(l *Lab) { l.runner.Parallelism = n }
}

// NewLab returns a ready Lab. Close it to stop the worker pool.
func NewLab(opts ...LabOption) *Lab {
	l := &Lab{runner: &scenario.Runner{}}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Close marks the Lab closed — methods fail with ErrClosed from now on
// — then stops the worker pool. It is idempotent, safe to call from
// any goroutine, and safe concurrently with in-flight calls: running
// batches finish before the pool stops (see scenario.Runner.Close for
// the underlying contract). It always returns nil; the error result
// exists so a Lab satisfies io.Closer.
func (l *Lab) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.runner.Close()
	return nil
}

func (l *Lab) guard() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return nil
}

// Run executes one simulation described by cfg and returns its Result.
//
// The engine comes from cfg.Engine: EngineEvent (default) supports
// every Config feature; EngineSlot accepts only fully connected
// topologies without RTSCTS, frame errors, traces, churn or on-off
// traffic, and its Result carries no kernel event count, no latency
// histogram and no per-station failure counts (slot-synchronous runs
// have none of these notions).
//
// The run advances in small simulated-time chunks so ctx cancellation
// takes effect promptly mid-run; chunked stepping is bit-identical to
// a single uninterrupted run on both engines (pinned by tests).
func (l *Lab) Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := l.guard(); err != nil {
		return nil, err
	}
	return runConfig(ctx, cfg)
}

// runConfig is the single single-run path shared by Lab.Run and the
// package-level Run shim.
func runConfig(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	switch cfg.Engine {
	case EngineEvent:
		s, err := newEventSim(cfg)
		if err != nil {
			return nil, err
		}
		return stepRun(ctx, cfg.Duration, func(d time.Duration) *Result {
			return s.Run(d)
		})
	case EngineSlot:
		return runSlot(ctx, cfg)
	default:
		return nil, fmt.Errorf("%w: unknown engine %q (want %s or %s)", ErrInvalidConfig, cfg.Engine, EngineEvent, EngineSlot)
	}
}

// stepRun advances a resumable simulation to total in chunks, polling
// ctx between chunks. Both engines' Run(d) continue from where they
// stopped and recompute aggregates at return, so the chunking is
// invisible in the final Result.
func stepRun[R any](ctx context.Context, total time.Duration, run func(time.Duration) *R) (*R, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(err)
	}
	chunk := total / 64
	if chunk < time.Millisecond {
		chunk = time.Millisecond
	}
	for at := chunk; at < total; at += chunk {
		run(at)
		if err := ctx.Err(); err != nil {
			return nil, wrapErr(err)
		}
	}
	return run(total), nil
}

// runSlot executes one slot-engine run.
func runSlot(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("%w: Topology is required", ErrInvalidConfig)
	}
	if !cfg.Topology.FullyConnected() {
		return nil, fmt.Errorf("%w: %s needs a fully connected topology (hidden pairs need %s)", ErrInvalidConfig, EngineSlot, EngineEvent)
	}
	switch {
	case cfg.RTSCTS:
		return nil, fmt.Errorf("%w: RTSCTS needs %s", ErrInvalidConfig, EngineEvent)
	case cfg.FrameErrorRate != 0:
		return nil, fmt.Errorf("%w: FrameErrorRate needs %s", ErrInvalidConfig, EngineEvent)
	case cfg.Trace != nil:
		return nil, fmt.Errorf("%w: Trace needs %s", ErrInvalidConfig, EngineEvent)
	case len(cfg.Churn) > 0:
		return nil, fmt.Errorf("%w: Churn needs %s", ErrInvalidConfig, EngineEvent)
	}
	n := cfg.Topology.N()
	policies, controller, err := scheme.Build(string(cfg.Scheme), cfg.Weights, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	arrivals, err := cfg.arrivals(n)
	if err != nil {
		return nil, err
	}
	phy := model.PaperPHY()
	s, err := slotsim.New(slotsim.Config{
		PHY:          phy,
		Policies:     policies,
		Controller:   controller,
		UpdatePeriod: sim.Duration(cfg.UpdatePeriod),
		Seed:         cfg.Seed,
		Arrivals:     arrivals,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	res, err := stepRun(ctx, cfg.Duration, func(d time.Duration) *slotsim.Result {
		return s.Run(sim.Duration(d))
	})
	if err != nil {
		return nil, err
	}
	return slotResult(res, cfg.Weights, int64(phy.Payload)), nil
}

// slotResult maps a slot-engine result onto the shared Result shape.
// Fields without a slot-synchronous meaning stay zero: EventsFired,
// MaxConcurrent, the latency histogram/jitter sums, FrameErrors,
// ActiveSeries, and per-station Failures (slotsim counts collisions per
// busy period, not per station). Per-station Successes are exact —
// every success delivers one fixed payloadBits (the run's actual PHY
// payload, threaded from runSlot).
func slotResult(res *slotsim.Result, weights []float64, payloadBits int64) *Result {
	out := &Result{
		Duration:         res.Duration,
		Throughput:       res.Throughput,
		Successes:        res.Successes,
		Collisions:       res.Collisions,
		APIdleSlots:      res.IdleSlotsPerTx,
		ThroughputSeries: res.ThroughputSeries,
		ControlSeries:    res.ControlSeries,
		PacketsArrived:   res.PacketsArrived,
		PacketsDropped:   res.PacketsDropped,
	}
	secs := time.Duration(res.Duration).Seconds()
	out.Stations = make([]StationStats, len(res.PerStation))
	for i, bits := range res.PerStation {
		st := StationStats{
			BitsDelivered: bits,
			Successes:     bits / payloadBits,
			Weight:        1,
		}
		if weights != nil {
			st.Weight = weights[i]
		}
		if secs > 0 {
			st.Throughput = float64(bits) / secs
		}
		out.Stations[i] = st
	}
	return out
}

// RunScenario validates and executes one declarative Scenario — all its
// seeded replications — through the Lab's worker pool and returns the
// aggregate Summary. The aggregate is bit-identical for any parallelism
// and for any interleaving with other Lab calls. Cancelling ctx aborts
// at replication granularity and returns ErrCanceled.
func (l *Lab) RunScenario(ctx context.Context, sc Scenario) (*Summary, error) {
	if err := l.guard(); err != nil {
		return nil, err
	}
	sum, err := l.runner.Run(ctx, &sc)
	if err != nil {
		return nil, wrapErr(err)
	}
	return sum, nil
}

// RunSuite executes every scenario of a suite, fanning all replications
// of all scenarios into the worker pool at once, and returns one
// Summary per scenario in suite order.
func (l *Lab) RunSuite(ctx context.Context, su *Suite) ([]*Summary, error) {
	if err := l.guard(); err != nil {
		return nil, err
	}
	sums, err := l.runner.RunSuite(ctx, su)
	if err != nil {
		return nil, wrapErr(err)
	}
	return sums, nil
}

// SweepOption configures a Lab.Sweep or Lab.SweepStream call.
type SweepOption func(*sweepConfig)

type sweepConfig struct {
	cacheDir string
	shard    Shard
	stats    *SweepStats
}

// WithSweepCache backs the sweep with the content-addressed result
// cache at dir (created if needed): completed (scenario, engine) points
// are served without re-simulating, which makes re-runs and resumed
// runs cheap and lets concurrent shards share one directory.
func WithSweepCache(dir string) SweepOption {
	return func(sc *sweepConfig) { sc.cacheDir = dir }
}

// WithShard restricts the sweep to the deterministic partition
// index/count of the expanded grid. Shards are disjoint and complete:
// their merged outputs are byte-identical to an unsharded run.
func WithShard(index, count int) SweepOption {
	return func(sc *sweepConfig) { sc.shard = Shard{Index: index, Count: count} }
}

// WithSweepStats records the sweep's satisfaction counts (total, owned,
// simulated, cached) into st when the sweep finishes.
func WithSweepStats(st *SweepStats) SweepOption {
	return func(sc *sweepConfig) { sc.stats = st }
}

// errSweepStop aborts a sweep whose consumer stopped iterating early.
var errSweepStop = errors.New("wlan: sweep iteration stopped")

// Sweep expands the grid's cross-product, executes every owned point
// through the Lab's worker pool (serving cache hits without
// simulating), and yields one (point, nil) pair per point in expansion
// order. On failure — validation, simulation, cancellation — the
// sequence ends with a single (nil, err) pair carrying the matching
// sentinel. Breaking out of the loop aborts the sweep; remaining
// points drain unsimulated:
//
//	for pt, err := range lab.Sweep(ctx, grid, wlan.WithSweepCache(dir)) {
//		if err != nil {
//			return err
//		}
//		fmt.Println(pt.Name, pt.Summary.ConvergedMbps.Mean)
//	}
func (l *Lab) Sweep(ctx context.Context, g *Grid, opts ...SweepOption) iter.Seq2[*SweepPoint, error] {
	return func(yield func(*SweepPoint, error) bool) {
		r, sc, err := l.sweepRunner(opts)
		if err != nil {
			yield(nil, err)
			return
		}
		stopped := false
		st, err := r.Each(ctx, g, func(pr *SweepPoint) error {
			if !yield(pr, nil) {
				stopped = true
				return errSweepStop
			}
			return nil
		})
		if sc.stats != nil {
			*sc.stats = st
		}
		if err != nil && !stopped {
			yield(nil, wrapErr(err))
		}
	}
}

// SweepStream executes the sweep like Sweep but writes the canonical
// JSONL row encoding — one deterministic row per point, in point order
// — to w. This is the encoding the wlansim CLI emits, shard merges
// recombine byte-identically, and the committed golden files pin.
func (l *Lab) SweepStream(ctx context.Context, g *Grid, w io.Writer, opts ...SweepOption) (SweepStats, error) {
	r, sc, err := l.sweepRunner(opts)
	if err != nil {
		return SweepStats{}, err
	}
	st, err := r.Stream(ctx, g, w)
	if sc.stats != nil {
		*sc.stats = st
	}
	return st, wrapErr(err)
}

// sweepRunner assembles the sweep executor bound to the Lab's pool.
func (l *Lab) sweepRunner(opts []SweepOption) (*sweep.Runner, *sweepConfig, error) {
	if err := l.guard(); err != nil {
		return nil, nil, err
	}
	sc := &sweepConfig{}
	for _, o := range opts {
		o(sc)
	}
	r := &sweep.Runner{Shard: sc.shard, Scenarios: l.runner}
	if l.metrics != nil {
		r.Metrics = l.metrics.sweep
	}
	if sc.cacheDir != "" {
		c, err := sweep.OpenCache(sc.cacheDir)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
		}
		r.Cache = c
	}
	return r, sc, nil
}
