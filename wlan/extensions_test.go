package wlan

import (
	"bytes"
	"testing"
	"time"
)

func TestRTSCTSThroughFacade(t *testing.T) {
	// Two-cluster hidden topology: RTS/CTS must rescue throughput.
	tp := Custom([]Point{{X: -15}, {X: -15, Y: 0.5}, {X: 15}, {X: 15, Y: 0.5}})
	if len(tp.HiddenPairs()) == 0 {
		t.Fatal("expected hidden pairs")
	}
	basic, err := Run(Config{Topology: tp, Duration: 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := Run(Config{Topology: tp, Duration: 8 * time.Second, RTSCTS: true})
	if err != nil {
		t.Fatal(err)
	}
	if prot.CollisionRate() >= basic.CollisionRate() {
		t.Errorf("RTS/CTS collision rate %.3f not below basic %.3f",
			prot.CollisionRate(), basic.CollisionRate())
	}
}

func TestFrameErrorsThroughFacade(t *testing.T) {
	res, err := Run(Config{
		Topology:       Connected(4),
		Duration:       5 * time.Second,
		FrameErrorRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FrameErrors == 0 {
		t.Error("no frame errors recorded")
	}
	if _, err := Run(Config{Topology: Connected(2), FrameErrorRate: 1}); err == nil {
		t.Error("FrameErrorRate = 1 accepted")
	}
}

func TestTraceCaptureThroughFacade(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	res, err := Run(Config{
		Topology: Connected(4),
		Duration: 3 * time.Second,
		Trace:    w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := AnalyzeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A data frame whose ACK is still in flight at the end of the run is
	// traced but not yet counted, so allow a one-frame boundary gap.
	if diff := int64(sum.ByType["Data"]) - (res.Successes + res.Collisions); diff < 0 || diff > 1 {
		t.Errorf("trace data count %d vs sim %d", sum.ByType["Data"], res.Successes+res.Collisions)
	}
	if sum.String() == "" {
		t.Error("empty summary")
	}
}
