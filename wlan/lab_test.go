package wlan

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

func testScenario(name string, seeds int) Scenario {
	return Scenario{
		Name:     name,
		Scheme:   string(TORACSMA),
		Topology: TopologySpec{Kind: TopoDisc, N: 8, Radius: 16},
		Traffic:  []TrafficSpec{PoissonTraffic(200)},
		Duration: Duration(2 * time.Second),
		Seeds:    seeds,
	}
}

func testGrid() *Grid {
	return &Grid{
		Name: "labgrid",
		Base: Scenario{
			Topology: TopologySpec{Kind: TopoConnected},
			Duration: Duration(time.Second),
		},
		Axes: []Axis{
			{Field: FieldScheme, Values: Strings(string(DCF), string(WTOPCSMA))},
			{Field: FieldNodes, Values: Ints(3, 5)},
		},
	}
}

// Lab.Run must be bit-identical to the package-level Run shim and to a
// single uninterrupted Simulation.Run call: the context-polling chunked
// stepping is invisible in the Result.
func TestLabRunMatchesOneShot(t *testing.T) {
	cfg := Config{
		Topology: Connected(8),
		Scheme:   WTOPCSMA,
		Duration: 4 * time.Second,
		Churn:    []ChurnStep{{At: Duration(time.Second), Active: 5}},
	}
	lab := NewLab()
	defer lab.Close()
	viaLab, err := lab.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaShim, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := oneShot.Run(cfg.Duration)
	if !reflect.DeepEqual(viaLab, direct) {
		t.Errorf("Lab.Run diverged from one-shot Simulation.Run:\n%+v\nvs\n%+v", viaLab, direct)
	}
	if !reflect.DeepEqual(viaLab, viaShim) {
		t.Errorf("Lab.Run diverged from the Run shim")
	}
}

// The slot engine through the facade: chunked stepping bit-identical to
// a direct one-shot slotsim run, per-station stats consistent, and the
// continuous-time-only features rejected with ErrInvalidConfig.
func TestLabRunSlotEngine(t *testing.T) {
	lab := NewLab()
	defer lab.Close()
	cfg := Config{
		Topology: Connected(12),
		Engine:   EngineSlot,
		Scheme:   TORACSMA,
		Duration: 3 * time.Second,
	}
	res, err := lab.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes == 0 || res.ThroughputMbps() <= 0 {
		t.Fatalf("slot run made no progress: %+v", res)
	}
	var perStation int64
	for _, st := range res.Stations {
		perStation += st.Successes
	}
	if perStation != res.Successes {
		t.Errorf("per-station successes %d != total %d", perStation, res.Successes)
	}
	if j := res.JainIndex(); j <= 0 || j > 1 {
		t.Errorf("Jain index %v outside (0, 1]", j)
	}

	// Cross-engine sanity: the engines' own agreement tests pin 5% on
	// long matched runs; at this short scale just require the same
	// ballpark.
	evCfg := cfg
	evCfg.Engine = EngineEvent
	ev, err := lab.Run(context.Background(), evCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := res.Throughput / ev.Throughput; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("slot/event throughput ratio %.3f outside 15%%", ratio)
	}

	for _, bad := range []Config{
		{Topology: Connected(4), Engine: EngineSlot, RTSCTS: true},
		{Topology: Connected(4), Engine: EngineSlot, FrameErrorRate: 0.1},
		{Topology: Connected(4), Engine: EngineSlot, Churn: []ChurnStep{{Active: 2}}},
		{Topology: Custom([]Point{{X: -15}, {X: 15}}), Engine: EngineSlot}, // hidden pair
		{Topology: Connected(4), Engine: Engine("quantum")},
	} {
		if _, err := lab.Run(context.Background(), bad); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("config %+v: err = %v, want ErrInvalidConfig", bad, err)
		}
	}
}

// A reused Lab must hand back exactly what fresh one-shot executions
// would, across all three entry points and in any order.
func TestLabReuseBitIdentical(t *testing.T) {
	ctx := context.Background()
	lab := NewLab(WithParallelism(4))
	defer lab.Close()

	// One-shot references, each on fresh machinery.
	refRunner := scenario.Runner{Parallelism: 1}
	defer refRunner.Close()
	refSum, err := refRunner.Run(ctx, func() *Scenario { sc := testScenario("reuse", 3); return &sc }())
	if err != nil {
		t.Fatal(err)
	}
	refPoints, _, err := (&sweep.Runner{}).Run(ctx, testGrid())
	if err != nil {
		t.Fatal(err)
	}

	// Interleave the three shapes on one Lab, twice over.
	for round := 0; round < 2; round++ {
		sum, err := lab.RunScenario(ctx, testScenario("reuse", 3))
		if err != nil {
			t.Fatal(err)
		}
		assertSummariesEqual(t, refSum, sum)

		if _, err := lab.Run(ctx, Config{Topology: Connected(5), Duration: time.Second}); err != nil {
			t.Fatal(err)
		}

		var got []*SweepPoint
		for pt, err := range lab.Sweep(ctx, testGrid()) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, pt)
		}
		if len(got) != len(refPoints) {
			t.Fatalf("round %d: %d sweep points, want %d", round, len(got), len(refPoints))
		}
		for i := range got {
			if got[i].Name != refPoints[i].Name || got[i].Key != refPoints[i].Key {
				t.Fatalf("round %d: point %d is (%s, %s), want (%s, %s)",
					round, i, got[i].Name, got[i].Key, refPoints[i].Name, refPoints[i].Key)
			}
			assertSummariesEqual(t, refPoints[i].Summary, got[i].Summary)
		}
	}
}

func assertSummariesEqual(t *testing.T, want, got *Summary) {
	t.Helper()
	wj, err := MarshalSummaries([]*Summary{want})
	if err != nil {
		t.Fatal(err)
	}
	gj, err := MarshalSummaries([]*Summary{got})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Errorf("summaries differ:\n%s\nvs\n%s", wj, gj)
	}
}

// Cancellation mid-batch: RunScenario returns ErrCanceled (and the
// context's own error), the pool drains, and no goroutines leak.
func TestLabCancellationNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	lab := NewLab(WithParallelism(2))
	ctx, cancel := context.WithCancel(context.Background())
	sc := testScenario("cancelled", 400)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := lab.RunScenario(ctx, sc)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v does not also match context.Canceled", err)
	}
	if err := lab.Close(); err != nil {
		t.Fatal(err)
	}

	// The worker pool must be gone: poll the goroutine count back down
	// to (near) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after Close — leak", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Lab.Run polls the context mid-simulation: a deadline far shorter than
// the run aborts it promptly with ErrCanceled.
func TestLabRunCancelsMidSimulation(t *testing.T) {
	lab := NewLab()
	defer lab.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := lab.Run(ctx, Config{Topology: Connected(30), Duration: 10 * time.Minute})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err = lab.Run(ctx2, Config{Topology: Connected(10), Duration: 10 * time.Minute})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	// 10 simulated minutes of 30 saturated stations takes far longer
	// than a second of wall clock; returning quickly proves the mid-run
	// poll, with generous slack for loaded CI machines.
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("cancellation took %v — mid-run polling broken", wall)
	}
}

// Typed sentinel round-trips across every entry point.
func TestLabTypedErrors(t *testing.T) {
	ctx := context.Background()
	lab := NewLab()

	if _, err := lab.RunScenario(ctx, Scenario{Topology: TopologySpec{Kind: "torus", N: 2}}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("bad scenario: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := lab.Run(ctx, Config{}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("missing topology: err = %v, want ErrInvalidConfig", err)
	}
	if _, err := DecodeScenarios([]byte(`{"topology":{"kind":"connected","n":-3}}`)); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("bad scenario file: want ErrInvalidConfig")
	}
	if _, err := ParseShard("1/x"); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("bad shard: want ErrInvalidConfig")
	}
	for _, err := range collectSweepErrs(lab.Sweep(ctx, &Grid{Base: Scenario{}, Axes: []Axis{{Field: "bogus", Values: Ints(1)}}})) {
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("bad grid: err = %v, want ErrInvalidConfig", err)
		}
	}

	lab.Close()
	if _, err := lab.Run(ctx, Config{Topology: Connected(2)}); !errors.Is(err, ErrClosed) {
		t.Errorf("Run after Close: err = %v, want ErrClosed", err)
	}
	if _, err := lab.RunScenario(ctx, testScenario("late", 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("RunScenario after Close: err = %v, want ErrClosed", err)
	}
	for _, err := range collectSweepErrs(lab.Sweep(ctx, testGrid())) {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Sweep after Close: err = %v, want ErrClosed", err)
		}
	}
	if err := lab.Close(); err != nil { // idempotent
		t.Errorf("second Close: %v", err)
	}
}

func collectSweepErrs(seq func(func(*SweepPoint, error) bool)) []error {
	var errs []error
	seq(func(pt *SweepPoint, err error) bool {
		if err != nil {
			errs = append(errs, err)
		}
		return true
	})
	if len(errs) == 0 {
		errs = append(errs, nil)
	}
	return errs
}

// Breaking out of a Sweep iteration aborts the sweep cleanly: the
// remaining points drain, the Lab stays usable, and no further yields
// happen.
func TestLabSweepEarlyBreak(t *testing.T) {
	ctx := context.Background()
	lab := NewLab()
	defer lab.Close()
	seen := 0
	for pt, err := range lab.Sweep(ctx, testGrid()) {
		if err != nil {
			t.Fatal(err)
		}
		_ = pt
		seen++
		if seen == 1 {
			break
		}
	}
	if seen != 1 {
		t.Fatalf("saw %d points after break", seen)
	}
	// The Lab (and its pool) must still work.
	if _, err := lab.RunScenario(ctx, testScenario("afterbreak", 1)); err != nil {
		t.Fatalf("Lab unusable after sweep break: %v", err)
	}
}

// Sweep caching and sharding through the facade: a cached re-run
// simulates nothing and returns identical summaries; two shards
// partition the grid exactly.
func TestLabSweepCacheAndShard(t *testing.T) {
	ctx := context.Background()
	lab := NewLab()
	defer lab.Close()
	dir := t.TempDir()

	var cold, warm SweepStats
	var first []*SweepPoint
	for pt, err := range lab.Sweep(ctx, testGrid(), WithSweepCache(dir), WithSweepStats(&cold)) {
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, pt)
	}
	if cold.Simulated != cold.Owned || cold.Cached != 0 {
		t.Fatalf("cold stats %+v", cold)
	}
	var second []*SweepPoint
	for pt, err := range lab.Sweep(ctx, testGrid(), WithSweepCache(dir), WithSweepStats(&warm)) {
		if err != nil {
			t.Fatal(err)
		}
		second = append(second, pt)
	}
	if warm.Simulated != 0 || warm.Cached != warm.Owned {
		t.Fatalf("warm stats %+v — cache misses on identical grid", warm)
	}
	for i := range first {
		assertSummariesEqual(t, first[i].Summary, second[i].Summary)
	}

	var s0, s1 SweepStats
	var shardNames []string
	for pt, err := range lab.Sweep(ctx, testGrid(), WithShard(0, 2), WithSweepStats(&s0)) {
		if err != nil {
			t.Fatal(err)
		}
		shardNames = append(shardNames, pt.Name)
	}
	for pt, err := range lab.Sweep(ctx, testGrid(), WithShard(1, 2), WithSweepStats(&s1)) {
		if err != nil {
			t.Fatal(err)
		}
		shardNames = append(shardNames, pt.Name)
	}
	if s0.Owned+s1.Owned != s0.Total || s0.Total != s1.Total {
		t.Fatalf("shards do not partition: %+v / %+v", s0, s1)
	}
	if len(shardNames) != s0.Total {
		t.Fatalf("%d shard points for total %d", len(shardNames), s0.Total)
	}
}

// SweepStream through the facade emits exactly the canonical JSONL the
// internal sweep runner streams.
func TestLabSweepStreamMatchesInternal(t *testing.T) {
	ctx := context.Background()
	lab := NewLab()
	defer lab.Close()
	var viaLab, viaInternal bytes.Buffer
	if _, err := lab.SweepStream(ctx, testGrid(), &viaLab); err != nil {
		t.Fatal(err)
	}
	if _, err := (&sweep.Runner{}).Stream(ctx, testGrid(), &viaInternal); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaLab.Bytes(), viaInternal.Bytes()) {
		t.Errorf("facade JSONL differs from internal stream:\n%s\nvs\n%s", viaLab.Bytes(), viaInternal.Bytes())
	}
}

// Unsaturated traffic through the single-run Config: the facade's
// Traffic field drives the engines' arrival processes.
func TestLabRunTraffic(t *testing.T) {
	lab := NewLab()
	defer lab.Close()
	res, err := lab.Run(context.Background(), Config{
		Topology: Connected(6),
		Traffic:  []TrafficSpec{PoissonTraffic(150)},
		Duration: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsArrived == 0 {
		t.Error("no arrivals recorded under Poisson traffic")
	}
	if res.Latency.Count() == 0 {
		t.Error("no latency samples recorded")
	}
	// On-off is continuous-time only.
	if _, err := lab.Run(context.Background(), Config{
		Topology: Connected(4),
		Engine:   EngineSlot,
		Traffic:  []TrafficSpec{OnOffTraffic(100, time.Second, time.Second)},
		Duration: time.Second,
	}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("on-off under slot engine: err = %v, want ErrInvalidConfig", err)
	}
	// Mis-sized traffic lists are invalid.
	if _, err := lab.Run(context.Background(), Config{
		Topology: Connected(4),
		Traffic:  []TrafficSpec{PoissonTraffic(1), PoissonTraffic(2)},
	}); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("2 traffic entries for 4 stations: err = %v, want ErrInvalidConfig", err)
	}
}

// Incremental eventsim stepping must also be exact for unsaturated and
// slot-engine workloads (the slotsim equivalent is pinned in its own
// package); sim.Duration granularity ensures ragged chunk boundaries.
func TestLabRunChunkingInvisibleUnderTraffic(t *testing.T) {
	cfg := Config{
		Topology: Connected(7),
		Scheme:   IdleSense,
		Traffic:  []TrafficSpec{PoissonTraffic(300)},
		Duration: 3*time.Second + 37*time.Millisecond,
	}
	lab := NewLab()
	defer lab.Close()
	viaLab, err := lab.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := s.Run(cfg.Duration)
	if !reflect.DeepEqual(viaLab, direct) {
		t.Errorf("chunked run diverged from one-shot under traffic")
	}
}
