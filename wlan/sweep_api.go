package wlan

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/sweep"
)

// The parameter-study layer, promoted from internal/sweep: a Grid names
// a base Scenario plus axes whose cross-product Lab.Sweep expands,
// executes through the shared worker pool, and streams back one point
// at a time — with optional content-addressed caching and deterministic
// sharding whose merged outputs are byte-identical to an unsharded run.

// Grid is a declarative parameter sweep: a base Scenario and the axes
// applied over it (the last axis varies fastest).
type Grid = sweep.Grid

// Axis is one swept dimension: a Field* name and its values. Build the
// values with Ints, Floats, Strings, Bools or Durations.
type Axis = sweep.Axis

// Axis field names accepted by Axis.Field.
const (
	FieldNodes          = sweep.FieldNodes
	FieldScheme         = sweep.FieldScheme
	FieldRate           = sweep.FieldRate
	FieldFrameErrorRate = sweep.FieldFrameErrorRate
	FieldRTSCTS         = sweep.FieldRTSCTS
	FieldTopology       = sweep.FieldTopology
	FieldRadius         = sweep.FieldRadius
	FieldSeparation     = sweep.FieldSeparation
	FieldDuration       = sweep.FieldDuration
	FieldSeeds          = sweep.FieldSeeds
	FieldSeed           = sweep.FieldSeed
	FieldUpdatePeriod   = sweep.FieldUpdatePeriod
)

// SweepPoint is one completed grid cell: its expansion index, canonical
// name, axis coordinates, concrete Scenario, cache key and Summary.
type SweepPoint = sweep.PointResult

// SweepStats counts how a sweep's points were satisfied (total, owned
// by this shard, simulated, served from cache).
type SweepStats = sweep.Stats

// Shard is a deterministic partition of a grid: point i belongs to
// shard i % Count. The zero value means the whole grid.
type Shard = sweep.Shard

// ParseShard parses the CLI form "i/N" (0 ≤ i < N); failures wrap
// ErrInvalidConfig.
func ParseShard(s string) (Shard, error) {
	sh, err := sweep.ParseShard(s)
	if err != nil {
		return Shard{}, &wrappedErr{sentinel: ErrInvalidConfig, err: err}
	}
	return sh, nil
}

// MergeSweeps combines shard JSONL outputs into the byte-exact
// unsharded stream: rows are reordered by point index, verified to
// form exactly the contiguous range 0..n-1, and written without
// re-encoding. It returns the merged row count.
func MergeSweeps(w io.Writer, shards ...io.Reader) (int, error) {
	return sweep.Merge(w, shards...)
}

// Ints builds axis values from Go ints.
func Ints(vs ...int) []json.RawMessage { return sweep.Ints(vs...) }

// Floats builds axis values from Go floats.
func Floats(vs ...float64) []json.RawMessage { return sweep.Floats(vs...) }

// Strings builds axis values from Go strings.
func Strings(vs ...string) []json.RawMessage { return sweep.Strings(vs...) }

// Bools builds axis values from Go bools.
func Bools(vs ...bool) []json.RawMessage { return sweep.Bools(vs...) }

// Durations builds axis values from Go durations.
func Durations(vs ...time.Duration) []json.RawMessage { return sweep.Durations(vs...) }

// SweepMeta is the sidecar stamp of one sweep run: engine version,
// grid config hash, shard, satisfaction stats and wall time. It lives
// in a separate <out>.meta.json file, never inside the JSONL rows —
// the rows stay a pure function of (grid, engine version) so shard
// merges and golden diffs remain byte-identical.
type SweepMeta = sweep.Meta

// NewSweepMeta assembles the stamp for a finished sweep run.
func NewSweepMeta(g *Grid, sh Shard, st SweepStats, started time.Time, wall time.Duration) *SweepMeta {
	return sweep.NewMeta(g, sh, st, started, wall)
}

// SweepMetaPath is the canonical sidecar location for a JSONL output
// file: <outPath>.meta.json.
func SweepMetaPath(outPath string) string { return sweep.MetaPath(outPath) }

// DecodeSweep parses and validates a sweep grid file; failures wrap
// ErrInvalidConfig. (Per-point validation happens at expansion, inside
// Lab.Sweep.)
func DecodeSweep(data []byte) (*Grid, error) {
	g, err := sweep.Decode(data)
	if err != nil {
		return nil, wrapErr(err)
	}
	return g, nil
}
