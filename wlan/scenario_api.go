package wlan

import (
	"time"

	"repro/internal/scenario"
)

// The declarative layer, promoted from internal/scenario: a Scenario is
// a JSON-encodable description of a replicated simulation campaign —
// topology family, per-station traffic, scheme, churn, replication
// count — executed by Lab.RunScenario with mean/CI aggregation. A Suite
// bundles several; DecodeScenarios parses the on-disk form.

// Scenario is one declarative workload spec. The zero value of every
// field defaults sensibly (30 s, one replication, seed 1, DCF,
// saturated traffic); Lab.RunScenario validates and fills defaults.
type Scenario = scenario.Spec

// Suite is a named list of scenarios — the on-disk file format.
type Suite = scenario.Suite

// Summary is the aggregate outcome of a scenario: per-replication
// metrics reduced to mean/CI statistics plus exact sums.
type Summary = scenario.Summary

// AggStat is a mean/stddev/CI95 triple inside a Summary.
type AggStat = scenario.AggStat

// TopologySpec selects a topology family declaratively (see the Topo*
// kinds). The geometric Topology type realises one concrete layout;
// TopologySpec describes a family a Scenario redraws per replication.
type TopologySpec = scenario.TopologySpec

// Topology family names accepted by TopologySpec.Kind.
const (
	TopoConnected = scenario.TopoConnected // n stations on a circle, every pair in sensing range
	TopoDisc      = scenario.TopoDisc      // uniform draw in a disc; radius > 12 m yields hidden pairs
	TopoClusters  = scenario.TopoClusters  // two clusters either side of the AP, maximally hidden
	TopoCustom    = scenario.TopoCustom    // explicit station positions
)

// ScenarioPoint is a station position inside a TopologySpec (kind
// TopoCustom). Distinct from Point, the geometric type.
type ScenarioPoint = scenario.Point

// TrafficSpec describes one (or all) stations' packet arrival process:
// "saturated" (default), "poisson" or "onoff". Use the constructors
// below for the common cases.
type TrafficSpec = scenario.TrafficSpec

// SaturatedTraffic returns the paper's regime: an infinite backlog.
func SaturatedTraffic() TrafficSpec { return TrafficSpec{Model: "saturated"} }

// PoissonTraffic returns memoryless arrivals at rate packets/second.
func PoissonTraffic(rate float64) TrafficSpec {
	return TrafficSpec{Model: "poisson", Rate: rate}
}

// OnOffTraffic returns an interrupted Poisson process: exponential On
// phases (mean on) with arrivals at rate, alternating with silent
// exponential Off phases (mean off).
func OnOffTraffic(rate float64, on, off time.Duration) TrafficSpec {
	return TrafficSpec{Model: "onoff", Rate: rate, OnMean: Duration(on), OffMean: Duration(off)}
}

// ChurnStep pins the active-station count from a given instant: the
// first Active stations are active, the rest depart (finishing any
// exchange in flight first).
type ChurnStep = scenario.ChurnStep

// Duration is the simulated time span used by the declarative types;
// it marshals as a Go duration string ("250ms", "90s") and converts
// directly from time.Duration: wlan.Duration(90 * time.Second).
type Duration = scenario.Duration

// DecodeScenarios parses and validates a scenario file: either a Suite
// ({"scenarios": [...]}) or a single bare Scenario object. Unknown
// fields are rejected and every dimension is bounds-checked; failures
// wrap ErrInvalidConfig.
func DecodeScenarios(data []byte) (*Suite, error) {
	su, err := scenario.Decode(data)
	if err != nil {
		return nil, wrapErr(err)
	}
	return su, nil
}

// MarshalSummaries renders summaries as the canonical indented JSON the
// golden files and the wlansim -summary-json flag share. The byte
// output is deterministic: struct-field order is fixed and float
// formatting is Go's shortest round-trip encoding.
func MarshalSummaries(sums []*Summary) ([]byte, error) {
	return scenario.MarshalSummaries(sums)
}
