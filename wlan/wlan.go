// Package wlan is the public API of the repository: saturated CSMA/CA
// WLAN simulation with hidden-node support and the stochastic-
// approximation MAC tuning algorithms of Krishnan & Chaporkar,
// "Stochastic Approximation Algorithm for Optimal Throughput Performance
// of Wireless LANs" (arXiv:1006.2048) — wTOP-CSMA and TORA-CSMA —
// alongside the standard 802.11 DCF and IdleSense baselines.
//
// A minimal run:
//
//	res, err := wlan.Run(wlan.Config{
//		Topology: wlan.Connected(20),
//		Scheme:   wlan.WTOPCSMA,
//		Duration: 60 * time.Second,
//	})
//
// See examples/ for weighted fairness, hidden-node comparisons and
// dynamic node churn.
package wlan

import (
	"fmt"
	"io"
	"time"

	"repro/internal/eventsim"
	"repro/internal/model"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Scheme selects a channel-access scheme.
type Scheme string

// The four schemes of the paper's evaluation.
const (
	// DCF is the standard IEEE 802.11 exponential backoff.
	DCF Scheme = "802.11"
	// IdleSense is Heusse et al.'s AIMD on the contention window.
	IdleSense Scheme = "IdleSense"
	// WTOPCSMA is the paper's weighted-fair throughput-optimal
	// p-persistent CSMA (Kiefer–Wolfowitz on p at the AP).
	WTOPCSMA Scheme = "wTOP-CSMA"
	// TORACSMA is the paper's throughput-optimal RandomReset
	// exponential backoff (Kiefer–Wolfowitz on p0 plus stage walking).
	TORACSMA Scheme = "TORA-CSMA"
)

// Topology re-exports the geometric model: station positions plus
// unit-disc sensing (24 m) and decoding (16 m) ranges.
type Topology = topo.Topology

// Point is a 2-D position in metres; the AP sits at the origin.
type Point = topo.Point

// Connected returns a fully connected topology: n stations on a circle
// of radius 8 m around the AP (every pair within sensing range).
func Connected(n int) *Topology {
	return topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii())
}

// HiddenDisc returns a topology with stations placed uniformly at random
// in a disc of the given radius (metres) around the AP. Radii above 12 m
// can produce station pairs beyond the 24 m sensing range — hidden nodes.
// Stations drawn beyond the 16 m decode radius are projected onto the rim
// so every station keeps AP connectivity. The seed fixes the draw.
func HiddenDisc(n int, radius float64, seed int64) *Topology {
	rng := sim.NewRNG(seed)
	pts := topo.UniformDisc(n, radius, rng)
	for i, p := range pts {
		if d := p.Distance(topo.Point{}); d > 16 {
			scale := 15.999 / d
			pts[i] = topo.Point{X: p.X * scale, Y: p.Y * scale}
		}
	}
	return topo.New(topo.Point{}, pts, topo.PaperRadii())
}

// Custom builds a topology from explicit station positions with the
// paper's radii. The AP is at the origin; every station must lie within
// the 16 m decode radius.
func Custom(stations []Point) *Topology {
	return topo.New(topo.Point{}, stations, topo.PaperRadii())
}

// Config describes one simulation run.
type Config struct {
	// Topology fixes station placement. Required.
	Topology *Topology
	// Scheme selects the channel-access algorithm (default DCF).
	Scheme Scheme
	// Weights assigns per-station fairness weights (wTOP-CSMA only;
	// nil means unit weights). Length must match the station count.
	Weights []float64
	// Duration is the simulated time (default 30 s).
	Duration time.Duration
	// Warmup is excluded by Result.ConvergedThroughputMbps (default
	// Duration/2).
	Warmup time.Duration
	// Seed makes runs reproducible (default 1).
	Seed int64
	// UpdatePeriod is the controller window Δ (default 250 ms).
	UpdatePeriod time.Duration
	// RTSCTS enables the RTS/CTS exchange before every data frame:
	// hidden-node collisions move onto the short control frames at the
	// cost of fixed control-rate overhead (the trade-off discussed in
	// the paper's introduction).
	RTSCTS bool
	// FrameErrorRate applies i.i.d. loss to data frames in [0, 1).
	FrameErrorRate float64
	// Trace, when non-nil, receives every completed frame. Construct
	// one with NewTraceWriter and analyse captures with AnalyzeTrace.
	Trace Tracer
}

// Tracer is the frame-capture hook; obtain one from NewTraceWriter.
type Tracer = eventsim.Tracer

// TraceWriter captures the simulation's frame stream as JSON lines.
type TraceWriter = trace.Writer

// TraceSummary aggregates a capture (frame counts by type, per-station
// delivery and retry statistics, goodput).
type TraceSummary = trace.Summary

// NewTraceWriter returns a Tracer that writes a JSONL capture to w.
// Close it after the run to flush buffered lines.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// AnalyzeTrace aggregates a JSONL capture produced by NewTraceWriter.
func AnalyzeTrace(r io.Reader) (*TraceSummary, error) { return trace.Analyze(r) }

// ShortTermFairness computes Jain's fairness index over sliding windows
// of `window` successful data frames from a capture, returning the
// per-window indices and their mean. A scheme can be perfectly fair over
// a whole run yet starve stations for bursts; this metric exposes that.
func ShortTermFairness(r io.Reader, window int) (indices []float64, mean float64, err error) {
	return trace.ShortTermFairness(r, window)
}

// Result re-exports the simulator's run summary.
type Result = eventsim.Result

// Simulation is a configured run that supports mid-run node churn.
type Simulation struct {
	inner  *eventsim.Simulator
	warmup sim.Duration
}

// New assembles a simulation without running it.
func New(cfg Config) (*Simulation, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("wlan: Topology is required")
	}
	if cfg.Scheme == "" {
		cfg.Scheme = DCF
	}
	if cfg.Duration == 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration / 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	n := cfg.Topology.N()
	// The scheme→policy mapping is scheme.Build — the single such
	// mapping in the repository, shared with the scenario runner and
	// the experiment harness.
	policies, controller, err := scheme.Build(string(cfg.Scheme), cfg.Weights, n)
	if err != nil {
		return nil, fmt.Errorf("wlan: %w", err)
	}

	inner, err := eventsim.New(eventsim.Config{
		PHY:            model.PaperPHY(),
		Topology:       cfg.Topology,
		Policies:       policies,
		Controller:     controller,
		Seed:           cfg.Seed,
		UpdatePeriod:   sim.Duration(cfg.UpdatePeriod),
		RTSCTS:         cfg.RTSCTS,
		FrameErrorRate: cfg.FrameErrorRate,
		Trace:          cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Simulation{inner: inner, warmup: sim.Duration(cfg.Warmup)}, nil
}

// SetActiveAt schedules the active-station count to become exactly the
// first n stations at simulated time t — node arrivals and departures.
func (s *Simulation) SetActiveAt(t time.Duration, n int) error {
	return s.inner.SetActiveAt(sim.Time(t), n)
}

// Run advances the simulation to the given simulated duration and
// returns accumulated results; it may be called repeatedly with
// increasing durations.
func (s *Simulation) Run(d time.Duration) *Result {
	return s.inner.Run(sim.Duration(d))
}

// Warmup returns the configured warmup used by converged averages.
func (s *Simulation) Warmup() time.Duration { return time.Duration(s.warmup) }

// Run assembles and executes one simulation in a single call.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(cfg.Duration), nil
}

// OptimalAttemptProbability returns the analytic optimum p* of the
// p-persistent throughput function (Theorem 2) for n equal-weight
// stations under the paper's PHY.
func OptimalAttemptProbability(n int) float64 {
	m := model.PPersistent{PHY: model.PaperPHY()}
	return m.OptimalP(model.UnitWeights(n))
}

// MaxThroughputMbps returns the analytic saturation-throughput optimum
// S(p*) in Mbit/s for n equal-weight stations in a connected network.
func MaxThroughputMbps(n int) float64 {
	m := model.PPersistent{PHY: model.PaperPHY()}
	return m.MaxThroughput(model.UnitWeights(n)) / 1e6
}

// DCFThroughputMbps returns Bianchi's fixed-point prediction for the
// standard 802.11 DCF with the paper's parameters, in Mbit/s.
func DCFThroughputMbps(n int) float64 {
	d := model.DCF{PHY: model.PaperPHY(), Backoff: model.PaperBackoff(), N: n}
	return d.Throughput() / 1e6
}
