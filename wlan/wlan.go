// Package wlan is the public API of the repository: CSMA/CA WLAN
// simulation with hidden-node support and the stochastic-approximation
// MAC tuning algorithms of Krishnan & Chaporkar, "Stochastic
// Approximation Algorithm for Optimal Throughput Performance of
// Wireless LANs" (arXiv:1006.2048) — wTOP-CSMA and TORA-CSMA —
// alongside the standard 802.11 DCF and IdleSense baselines.
//
// # The Lab
//
// A Lab is the long-lived entry point. It owns a persistent simulation
// worker pool (lazily started, reused across calls) and exposes the
// three shapes every workload in the repository reduces to:
//
//	lab := wlan.NewLab()
//	defer lab.Close()
//
//	// One simulation.
//	res, err := lab.Run(ctx, wlan.Config{
//		Topology: wlan.Connected(20),
//		Scheme:   wlan.WTOPCSMA,
//		Duration: 60 * time.Second,
//	})
//
//	// A replicated declarative scenario, aggregated with CIs.
//	sum, err := lab.RunScenario(ctx, wlan.Scenario{
//		Topology: wlan.TopologySpec{Kind: wlan.TopoDisc, N: 30, Radius: 16},
//		Scheme:   string(wlan.TORACSMA),
//		Seeds:    10,
//	})
//
//	// A parameter grid, streamed point by point (cached, shardable).
//	for pt, err := range lab.Sweep(ctx, grid) { ... }
//
// Every entry point takes a context.Context: cancellation aborts at
// replication granularity (single runs advance in small simulated-time
// chunks, so they cancel promptly too) and surfaces as ErrCanceled.
// Validation failures surface as ErrInvalidConfig; use errors.Is.
// All results are deterministic: equal seeds and configs give
// bit-identical outcomes whatever the parallelism, and a Lab reused
// across calls returns exactly what one-shot calls would.
//
// wlan.Run, wlan.New and the other package-level helpers remain as
// thin shims over the same construction/validation path for callers
// that do not need a context or a shared pool.
//
// See examples/ for weighted fairness, hidden-node comparisons and
// dynamic node churn, and examples/sweeps/ for grid files.
package wlan

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/eventsim"
	"repro/internal/model"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Scheme selects a channel-access scheme.
type Scheme string

// The four schemes of the paper's evaluation.
const (
	// DCF is the standard IEEE 802.11 exponential backoff.
	DCF Scheme = "802.11"
	// IdleSense is Heusse et al.'s AIMD on the contention window.
	IdleSense Scheme = "IdleSense"
	// WTOPCSMA is the paper's weighted-fair throughput-optimal
	// p-persistent CSMA (Kiefer–Wolfowitz on p at the AP).
	WTOPCSMA Scheme = "wTOP-CSMA"
	// TORACSMA is the paper's throughput-optimal RandomReset
	// exponential backoff (Kiefer–Wolfowitz on p0 plus stage walking).
	TORACSMA Scheme = "TORA-CSMA"
)

// Engine selects a simulation engine.
type Engine string

const (
	// EngineEvent is the continuous-time event-driven engine: carrier
	// sense, hidden nodes, RTS/CTS, frame errors, traces, churn. The
	// default.
	EngineEvent Engine = "eventsim"
	// EngineSlot is the slot-synchronous Bianchi-style engine: fully
	// connected topologies only, much faster on large saturated
	// parameter studies. It cross-validates EngineEvent in the test
	// suite. Results carry no event counts, latency histograms or
	// per-station failure counts (see Lab.Run).
	EngineSlot Engine = "slotsim"
)

// Topology re-exports the geometric model: station positions plus
// unit-disc sensing (24 m) and decoding (16 m) ranges.
type Topology = topo.Topology

// Point is a 2-D position in metres; the AP sits at the origin.
type Point = topo.Point

// Connected returns a fully connected topology: n stations on a circle
// of radius 8 m around the AP (every pair within sensing range).
func Connected(n int) *Topology {
	return topo.New(topo.Point{}, topo.CircleEdge(n, 8), topo.PaperRadii())
}

// HiddenDisc returns a topology with stations placed uniformly at random
// in a disc of the given radius (metres) around the AP. Radii above 12 m
// can produce station pairs beyond the 24 m sensing range — hidden nodes.
// Stations drawn beyond the decode radius are projected onto its rim
// (topo.Radii.Rim, derived from the radii) so every station keeps AP
// connectivity. The seed fixes the draw.
func HiddenDisc(n int, radius float64, seed int64) *Topology {
	rng := sim.NewRNG(seed)
	pts := topo.UniformDisc(n, radius, rng)
	topo.ClampToRim(pts, topo.PaperRadii())
	return topo.New(topo.Point{}, pts, topo.PaperRadii())
}

// Custom builds a topology from explicit station positions with the
// paper's radii. The AP is at the origin; every station must lie within
// the 16 m decode radius.
func Custom(stations []Point) *Topology {
	return topo.New(topo.Point{}, stations, topo.PaperRadii())
}

// Config describes one simulation run.
type Config struct {
	// Topology fixes station placement. Required.
	Topology *Topology
	// Engine selects the simulation engine (default EngineEvent).
	// EngineSlot accepts only fully connected topologies and rejects
	// the continuous-time-only features: RTSCTS, FrameErrorRate, Trace,
	// Churn and on-off traffic.
	Engine Engine
	// Scheme selects the channel-access algorithm (default DCF).
	Scheme Scheme
	// Weights assigns per-station fairness weights (wTOP-CSMA only;
	// nil means unit weights). Length must match the station count.
	Weights []float64
	// Traffic holds zero (all saturated — the paper's regime), one
	// (applied to every station) or N per-station arrival processes.
	// Build entries with SaturatedTraffic, PoissonTraffic and
	// OnOffTraffic.
	Traffic []TrafficSpec
	// Churn schedules active-station counts over simulated time: at
	// each step's instant the first Active stations are active, the
	// rest depart (finishing any exchange in flight). EngineEvent only.
	Churn []ChurnStep
	// Duration is the simulated time (default 30 s).
	Duration time.Duration
	// Warmup is excluded by Result.ConvergedThroughputMbps (default
	// Duration/2).
	Warmup time.Duration
	// Seed makes runs reproducible (default 1).
	Seed int64
	// UpdatePeriod is the controller window Δ (default 250 ms).
	UpdatePeriod time.Duration
	// RTSCTS enables the RTS/CTS exchange before every data frame:
	// hidden-node collisions move onto the short control frames at the
	// cost of fixed control-rate overhead (the trade-off discussed in
	// the paper's introduction).
	RTSCTS bool
	// FrameErrorRate applies i.i.d. loss to data frames in [0, 1).
	FrameErrorRate float64
	// Trace, when non-nil, receives every completed frame. Construct
	// one with NewTraceWriter and analyse captures with AnalyzeTrace.
	Trace Tracer
}

// withDefaults fills the config's defaults in place (the single
// defaulting rule shared by every construction path).
func (cfg Config) withDefaults() Config {
	if cfg.Engine == "" {
		cfg.Engine = EngineEvent
	}
	if cfg.Scheme == "" {
		cfg.Scheme = DCF
	}
	if cfg.Duration == 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration / 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// arrivals expands cfg.Traffic to one engine spec per station, or nil
// when every station is saturated (the engines' fast path).
func (cfg *Config) arrivals(n int) ([]traffic.Spec, error) {
	switch len(cfg.Traffic) {
	case 0:
		return nil, nil
	case 1, n:
	default:
		return nil, fmt.Errorf("%w: Traffic must list 0, 1 or %d entries, got %d", ErrInvalidConfig, n, len(cfg.Traffic))
	}
	out := make([]traffic.Spec, n)
	unsat := false
	for i := range out {
		src := cfg.Traffic[0]
		if len(cfg.Traffic) == n {
			src = cfg.Traffic[i]
		}
		ts, err := src.EngineSpec()
		if err != nil {
			return nil, fmt.Errorf("%w: Traffic[%d]: %w", ErrInvalidConfig, min(i, len(cfg.Traffic)-1), err)
		}
		if err := ts.Validate(); err != nil {
			return nil, fmt.Errorf("%w: Traffic[%d]: %w", ErrInvalidConfig, min(i, len(cfg.Traffic)-1), err)
		}
		out[i] = ts
		if ts.Unsaturated() {
			unsat = true
		}
	}
	if !unsat {
		return nil, nil
	}
	return out, nil
}

// Tracer is the frame-capture hook; obtain one from NewTraceWriter.
type Tracer = eventsim.Tracer

// TraceWriter captures the simulation's frame stream as JSON lines.
type TraceWriter = trace.Writer

// TraceSummary aggregates a capture (frame counts by type, per-station
// delivery and retry statistics, goodput).
type TraceSummary = trace.Summary

// NewTraceWriter returns a Tracer that writes a JSONL capture to w.
// Close it after the run to flush buffered lines.
func NewTraceWriter(w io.Writer) *TraceWriter { return trace.NewWriter(w) }

// AnalyzeTrace aggregates a JSONL capture produced by NewTraceWriter.
func AnalyzeTrace(r io.Reader) (*TraceSummary, error) { return trace.Analyze(r) }

// ShortTermFairness computes Jain's fairness index over sliding windows
// of `window` successful data frames from a capture, returning the
// per-window indices and their mean. A scheme can be perfectly fair over
// a whole run yet starve stations for bursts; this metric exposes that.
func ShortTermFairness(r io.Reader, window int) (indices []float64, mean float64, err error) {
	return trace.ShortTermFairness(r, window)
}

// Result re-exports the simulator's run summary.
type Result = eventsim.Result

// StationStats re-exports the per-station slice element of Result.
type StationStats = eventsim.StationStats

// Simulation is a configured event-engine run that supports mid-run
// node churn. Most callers want Lab.Run (context-aware, both engines)
// or the Run shim; New remains for incremental stepping.
type Simulation struct {
	inner    *eventsim.Simulator
	warmup   sim.Duration
	duration sim.Duration
}

// New assembles an EngineEvent simulation without running it. Configs
// naming EngineSlot are rejected: the slotted engine runs whole
// durations through Lab.Run, not incrementally through a Simulation.
func New(cfg Config) (*Simulation, error) {
	cfg = cfg.withDefaults()
	if cfg.Engine != EngineEvent {
		return nil, fmt.Errorf("%w: New assembles %s simulations; run %s configs through Lab.Run", ErrInvalidConfig, EngineEvent, cfg.Engine)
	}
	return newEventSim(cfg)
}

func newEventSim(cfg Config) (*Simulation, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("%w: Topology is required", ErrInvalidConfig)
	}
	n := cfg.Topology.N()
	// The scheme→policy mapping is scheme.Build — the single such
	// mapping in the repository, shared with the scenario runner and
	// the experiment harness.
	policies, controller, err := scheme.Build(string(cfg.Scheme), cfg.Weights, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	arrivals, err := cfg.arrivals(n)
	if err != nil {
		return nil, err
	}

	inner, err := eventsim.New(eventsim.Config{
		PHY:            model.PaperPHY(),
		Topology:       cfg.Topology,
		Policies:       policies,
		Controller:     controller,
		Seed:           cfg.Seed,
		UpdatePeriod:   sim.Duration(cfg.UpdatePeriod),
		RTSCTS:         cfg.RTSCTS,
		FrameErrorRate: cfg.FrameErrorRate,
		Trace:          cfg.Trace,
		Arrivals:       arrivals,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	s := &Simulation{inner: inner, warmup: sim.Duration(cfg.Warmup), duration: sim.Duration(cfg.Duration)}
	for _, step := range cfg.Churn {
		if err := s.inner.SetActiveAt(sim.Time(step.At), step.Active); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidConfig, err)
		}
	}
	return s, nil
}

// SetActiveAt schedules the active-station count to become exactly the
// first n stations at simulated time t — node arrivals and departures.
func (s *Simulation) SetActiveAt(t time.Duration, n int) error {
	return s.inner.SetActiveAt(sim.Time(t), n)
}

// Run advances the simulation to the given simulated duration and
// returns accumulated results; it may be called repeatedly with
// increasing durations.
func (s *Simulation) Run(d time.Duration) *Result {
	return s.inner.Run(sim.Duration(d))
}

// Warmup returns the configured warmup used by converged averages.
func (s *Simulation) Warmup() time.Duration { return time.Duration(s.warmup) }

// Run assembles and executes one simulation in a single call: a shim
// over the same path as Lab.Run, without cancellation.
func Run(cfg Config) (*Result, error) {
	return runConfig(context.Background(), cfg)
}

// OptimalAttemptProbability returns the analytic optimum p* of the
// p-persistent throughput function (Theorem 2) for n equal-weight
// stations under the paper's PHY.
func OptimalAttemptProbability(n int) float64 {
	m := model.PPersistent{PHY: model.PaperPHY()}
	return m.OptimalP(model.UnitWeights(n))
}

// MaxThroughputMbps returns the analytic saturation-throughput optimum
// S(p*) in Mbit/s for n equal-weight stations in a connected network.
func MaxThroughputMbps(n int) float64 {
	m := model.PPersistent{PHY: model.PaperPHY()}
	return m.MaxThroughput(model.UnitWeights(n)) / 1e6
}

// DCFThroughputMbps returns Bianchi's fixed-point prediction for the
// standard 802.11 DCF with the paper's parameters, in Mbit/s.
func DCFThroughputMbps(n int) float64 {
	d := model.DCF{PHY: model.PaperPHY(), Backoff: model.PaperBackoff(), N: n}
	return d.Throughput() / 1e6
}
