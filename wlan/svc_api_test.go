package wlan

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/svc"
	"repro/internal/sweep"
)

// TestServeSweepsWorksACampaign runs a Lab worker against a real
// coordinator over HTTP and pins the byte-identity contract from the
// public API side: the merged service output equals the Lab's own
// single-machine SweepStream bytes.
func TestServeSweepsWorksACampaign(t *testing.T) {
	g := &Grid{
		Name: "facade-svc",
		Base: scenario.Spec{
			Topology: scenario.TopologySpec{Kind: scenario.TopoConnected},
			Duration: scenario.Duration(50e6),
		},
		Axes: []Axis{{Field: FieldNodes, Values: Ints(2, 3, 4)}},
	}
	lab := NewLab(WithParallelism(2))
	defer lab.Close()

	var ref bytes.Buffer
	if _, err := lab.SweepStream(context.Background(), g, &ref); err != nil {
		t.Fatal(err)
	}

	cache, err := sweep.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := svc.NewCoordinator(svc.CoordinatorConfig{
		Grid:     g,
		Cache:    cache,
		LeaseTTL: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go c.Run(ctx)

	if err := lab.ServeSweeps(ctx, srv.URL, WithWorkerID("lab-1"), WithWorkerBatch(2), WithServeLogf(t.Logf)); err != nil {
		t.Fatalf("ServeSweeps: %v", err)
	}
	select {
	case <-c.Done():
	case <-ctx.Done():
		t.Fatalf("campaign did not finish: %+v", c.Stats())
	}
	if got := c.RowsSnapshot(); !bytes.Equal(got, ref.Bytes()) {
		t.Errorf("service rows differ from Lab.SweepStream (%d vs %d bytes)", len(got), ref.Len())
	}
}

// TestServeSweepsSentinels pins the facade's error surface: svc-layer
// sentinels map onto public wlan sentinels, a closed Lab refuses to
// serve, and cancellation folds into ErrCanceled.
func TestServeSweepsSentinels(t *testing.T) {
	mappings := []struct {
		in   error
		want error
	}{
		{svc.ErrLeaseExpired, ErrLeaseExpired},
		{svc.ErrUnknownLease, ErrLeaseExpired},
		{svc.ErrCoordinatorUnavailable, ErrCoordinatorUnavailable},
	}
	for _, m := range mappings {
		if got := wrapErr(m.in); !errors.Is(got, m.want) || !errors.Is(got, m.in) {
			t.Errorf("wrapErr(%v) = %v, want both %v and the cause", m.in, got, m.want)
		}
	}

	closed := NewLab()
	closed.Close()
	if err := closed.ServeSweeps(context.Background(), "http://127.0.0.1:0"); !errors.Is(err, ErrClosed) {
		t.Errorf("ServeSweeps on closed lab: %v, want ErrClosed", err)
	}

	lab := NewLab()
	defer lab.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := lab.ServeSweeps(ctx, "http://127.0.0.1:0"); !errors.Is(err, ErrCanceled) {
		t.Errorf("ServeSweeps with cancelled ctx: %v, want ErrCanceled", err)
	}
}
