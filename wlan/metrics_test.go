package wlan

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches the handler's exposition text and parses the sample
// lines into name → value.
func scrape(t *testing.T, m *Metrics) (map[string]float64, string) {
	t.Helper()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q, not Prometheus text exposition", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, raw, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value: %v", line, err)
		}
		vals[name] = v
	}
	return vals, string(body)
}

// TestMetricsEndpointMatchesSweepStats runs a mixed cached+simulated
// sweep on a metrics-enabled Lab and requires the endpoint's final
// counter totals to equal the returned SweepStats exactly — the
// acceptance contract for the live metrics endpoint.
func TestMetricsEndpointMatchesSweepStats(t *testing.T) {
	ctx := context.Background()
	cacheDir := t.TempDir()
	g := testGrid()

	// Warm the cache for shard 0/2 only, on a metrics-free Lab, so the
	// instrumented run below sees a genuine cached+simulated mix.
	warm := NewLab()
	defer warm.Close()
	var warmStats SweepStats
	if _, err := warm.SweepStream(ctx, g, io.Discard,
		WithSweepCache(cacheDir), WithShard(0, 2), WithSweepStats(&warmStats)); err != nil {
		t.Fatal(err)
	}
	if warmStats.Simulated == 0 || warmStats.Owned == warmStats.Total {
		t.Fatalf("warm shard did not set up a partial cache: %+v", warmStats)
	}

	m := NewMetrics()
	lab := NewLab(WithMetrics(m))
	defer lab.Close()
	var st SweepStats
	var rows bytes.Buffer
	if _, err := lab.SweepStream(ctx, g, &rows, WithSweepCache(cacheDir), WithSweepStats(&st)); err != nil {
		t.Fatal(err)
	}
	if st.Cached == 0 || st.Simulated == 0 {
		t.Fatalf("run was not a cached+simulated mix: %+v", st)
	}

	vals, body := scrape(t, m)
	for name, want := range map[string]int{
		"wlansim_sweep_points_owned_total":     st.Owned,
		"wlansim_sweep_points_simulated_total": st.Simulated,
		"wlansim_sweep_points_cached_total":    st.Cached,
		"wlansim_sweep_points_failed_total":    0,
		"wlansim_sweep_rows_emitted_total":     st.Owned,
	} {
		got, ok := vals[name]
		if !ok {
			t.Errorf("endpoint missing %s:\n%s", name, body)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s = %v, want %d (stats %+v)", name, got, want, st)
		}
	}
	wantRate := float64(st.Cached) / float64(st.Cached+st.Simulated)
	if got := vals["wlansim_sweep_cache_hit_rate"]; got != wantRate {
		t.Errorf("cache hit rate = %v, want %v", got, wantRate)
	}
	// The replication counters must account for every simulated point's
	// replications and be quiescent after the run.
	if got := vals["wlansim_replications_in_flight"]; got != 0 {
		t.Errorf("in-flight gauge = %v after run finished", got)
	}
	if got := vals["wlansim_replications_total"]; got == 0 {
		t.Error("no replications counted")
	}
	if got := vals["wlansim_sim_events_total"]; got == 0 {
		t.Error("no kernel events counted")
	}

	snap := m.Snapshot()
	if snap.PointsSimulated != uint64(st.Simulated) || snap.PointsCached != uint64(st.Cached) {
		t.Errorf("Snapshot diverged from stats: %+v vs %+v", snap, st)
	}
	if snap.CacheHitRate != wantRate {
		t.Errorf("Snapshot.CacheHitRate = %v, want %v", snap.CacheHitRate, wantRate)
	}
}

// TestMetricsDoNotChangeOutput pins the observer contract: a
// metrics-enabled sweep's JSONL stream is byte-identical to a
// metrics-off run of the same grid.
func TestMetricsDoNotChangeOutput(t *testing.T) {
	ctx := context.Background()
	g := testGrid()

	plain := NewLab()
	defer plain.Close()
	var want bytes.Buffer
	if _, err := plain.SweepStream(ctx, g, &want); err != nil {
		t.Fatal(err)
	}

	metered := NewLab(WithMetrics(NewMetrics()))
	defer metered.Close()
	var got bytes.Buffer
	if _, err := metered.SweepStream(ctx, g, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("metrics-enabled sweep output diverged from metrics-off run:\n%s\nvs\n%s",
			got.String(), want.String())
	}
}

// failWriter fails every write, aborting a streamed sweep at its first
// flush.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("emit pipe broke") }

// A failed sweep must still balance the books: owned = simulated +
// cached + failed, so dashboards never show points vanishing. With
// parallelism 1 the abort point is deterministic: the first point
// simulates and emits, the flush fails, everything behind it drains.
func TestMetricsFailedPointsBalance(t *testing.T) {
	ctx := context.Background()
	m := NewMetrics()
	lab := NewLab(WithMetrics(m), WithParallelism(1))
	defer lab.Close()
	if _, err := lab.SweepStream(ctx, testGrid(), failWriter{}); err == nil {
		t.Fatal("sweep with a broken output did not fail")
	}
	s := m.Snapshot()
	if s.PointsOwned != s.PointsSimulated+s.PointsCached+s.PointsFailed {
		t.Errorf("books don't balance: owned %d != simulated %d + cached %d + failed %d",
			s.PointsOwned, s.PointsSimulated, s.PointsCached, s.PointsFailed)
	}
	if s.PointsFailed == 0 {
		t.Error("failed counter is 0 after an aborted sweep")
	}
}
