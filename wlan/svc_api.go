package wlan

import (
	"context"

	"repro/internal/svc"
)

// The sweep-service worker entry point: ServeSweeps joins a Lab to a
// wlansvc coordinator as a lease-holding worker, executing leased
// points through the Lab's shared scenario pool. The coordinator owns
// the campaign manifest, the cache and the merged output; the Lab
// contributes cycles. See cmd/wlansvc for the daemon around both
// halves.

// ServeOption configures one ServeSweeps call.
type ServeOption func(*serveConfig)

type serveConfig struct {
	workerID string
	maxBatch int
	logf     func(format string, args ...any)
}

// WithWorkerID names this worker in coordinator logs and lease
// bookkeeping. Defaults to "worker"; give each joined process a
// distinct name when several Labs serve one campaign.
func WithWorkerID(id string) ServeOption {
	return func(c *serveConfig) { c.workerID = id }
}

// WithWorkerBatch caps how many points the worker requests per lease.
// Zero accepts the coordinator's default batch size.
func WithWorkerBatch(n int) ServeOption {
	return func(c *serveConfig) { c.maxBatch = n }
}

// WithServeLogf receives the worker's operational log lines (leases
// taken, batches abandoned, heartbeat trouble). Nil stays silent.
func WithServeLogf(logf func(format string, args ...any)) ServeOption {
	return func(c *serveConfig) { c.logf = logf }
}

// ServeSweeps joins the sweep-service campaign at coordinatorURL and
// works it until the campaign completes, fails, or ctx is cancelled.
// Leased points run on the Lab's scenario pool, so WithParallelism
// sizes this worker too.
//
// Graceful outcomes — campaign done, coordinator draining — return
// nil. A failed campaign, a cancellation (ErrCanceled) or an
// unreachable coordinator (ErrCoordinatorUnavailable) return an
// error. Lease expiry is not an error: the worker abandons the batch
// and leases fresh work.
func (l *Lab) ServeSweeps(ctx context.Context, coordinatorURL string, opts ...ServeOption) error {
	if err := l.guard(); err != nil {
		return err
	}
	cfg := serveConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	cl := &svc.Client{BaseURL: coordinatorURL, Logf: cfg.logf}
	w, err := svc.NewWorker(svc.WorkerConfig{
		Client:   cl,
		ID:       cfg.workerID,
		Runner:   l.runner,
		MaxBatch: cfg.maxBatch,
		Logf:     cfg.logf,
	})
	if err != nil {
		return wrapErr(err)
	}
	return wrapErr(w.Run(ctx))
}
