package wlan

import (
	"context"
	"errors"

	"repro/internal/scenario"
	"repro/internal/svc"
	"repro/internal/sweep"
)

// Typed sentinel errors. Every error returned by the package wraps at
// most one of these, so callers branch with errors.Is instead of
// matching message strings:
//
//	sum, err := lab.RunScenario(ctx, sc)
//	switch {
//	case errors.Is(err, wlan.ErrInvalidConfig): // fix the input
//	case errors.Is(err, wlan.ErrCanceled):      // ctx was cancelled
//	case errors.Is(err, wlan.ErrClosed):        // lab already closed
//	}
var (
	// ErrInvalidConfig marks validation failures: a Config, Scenario,
	// Suite or sweep Grid that cannot describe a simulation. The wrapped
	// message names the offending field.
	ErrInvalidConfig = errors.New("wlan: invalid config")
	// ErrCanceled marks runs aborted by context cancellation or
	// deadline expiry. Errors wrapping it also wrap the context's own
	// error, so errors.Is(err, context.Canceled) keeps working.
	ErrCanceled = errors.New("wlan: run canceled")
	// ErrClosed marks calls on a Lab after Close.
	ErrClosed = errors.New("wlan: lab is closed")
	// ErrLeaseExpired marks sweep-service work abandoned because the
	// coordinator reissued the worker's lease to someone else. The
	// points are not lost — they complete under the new lease.
	ErrLeaseExpired = errors.New("wlan: sweep lease expired")
	// ErrCoordinatorUnavailable marks a sweep-service worker that
	// exhausted its retry budget without reaching the coordinator.
	ErrCoordinatorUnavailable = errors.New("wlan: sweep coordinator unavailable")
)

// wrapErr maps internal-layer errors onto the package's typed sentinel
// surface. Errors that already carry a sentinel — and simulation errors
// that match none — pass through unchanged.
func wrapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrInvalidConfig), errors.Is(err, ErrCanceled), errors.Is(err, ErrClosed):
		return err
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &wrappedErr{sentinel: ErrCanceled, err: err}
	case errors.Is(err, scenario.ErrInvalidSpec), errors.Is(err, sweep.ErrInvalidGrid):
		return &wrappedErr{sentinel: ErrInvalidConfig, err: err}
	case errors.Is(err, scenario.ErrClosed):
		return &wrappedErr{sentinel: ErrClosed, err: err}
	case errors.Is(err, svc.ErrLeaseExpired), errors.Is(err, svc.ErrUnknownLease):
		return &wrappedErr{sentinel: ErrLeaseExpired, err: err}
	case errors.Is(err, svc.ErrCoordinatorUnavailable):
		return &wrappedErr{sentinel: ErrCoordinatorUnavailable, err: err}
	}
	return err
}

// wrappedErr attaches a sentinel to an underlying error without
// rewriting its message twice: the message is "<sentinel>: <cause>" and
// errors.Is matches both.
type wrappedErr struct {
	sentinel error
	err      error
}

func (w *wrappedErr) Error() string { return w.sentinel.Error() + ": " + w.err.Error() }

func (w *wrappedErr) Unwrap() []error { return []error{w.sentinel, w.err} }
