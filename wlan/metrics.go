package wlan

import (
	"io"
	"net/http"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Metrics is a Lab's live instrumentation: counters and gauges over
// the replication and sweep fan-out paths, rendered in the Prometheus
// text exposition format. Create one with NewMetrics, attach it with
// WithMetrics, and either mount Handler on an HTTP server (the
// wlansim -metrics-addr endpoint) or poll Snapshot for an in-process
// progress view.
//
// Observation is strictly passive: a metrics-enabled Lab produces
// bit-identical results and byte-identical sweep output to a
// metrics-off one. After a sweep finishes, the point counters add up
// exactly to the returned SweepStats (owned = simulated + cached +
// failed).
type Metrics struct {
	reg   *metrics.Registry
	scen  *scenario.Metrics
	sweep *sweep.Metrics
}

// NewMetrics returns a fresh metric set. One Metrics belongs to one
// Lab: attaching it to several Labs would sum their counters.
func NewMetrics() *Metrics {
	reg := metrics.NewRegistry()
	return &Metrics{
		reg:   reg,
		scen:  scenario.NewMetrics(reg),
		sweep: sweep.NewMetrics(reg),
	}
}

// WithMetrics attaches m to the Lab: every scenario replication and
// sweep point the Lab executes from then on is counted.
func WithMetrics(m *Metrics) LabOption {
	return func(l *Lab) {
		l.metrics = m
		l.runner.Metrics = m.scen
	}
}

// Handler returns the /metrics endpoint: Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }

// WritePrometheus renders the current values in Prometheus text
// exposition format, sorted by metric name.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}

// MetricsSnapshot is a point-in-time copy of every Lab metric, for
// in-process consumers like the wlansim -progress ticker.
type MetricsSnapshot struct {
	// Sweep point satisfaction (totals across the Lab's lifetime).
	PointsOwned     uint64
	PointsSimulated uint64
	PointsCached    uint64
	PointsFailed    uint64
	RowsEmitted     uint64
	// CacheHitRate is cached/(cached+simulated), 0 before any point.
	CacheHitRate float64

	// Replication fan-out.
	Replications         uint64
	ReplicationsInFlight int64
	Workers              int64
	// Utilization is in-flight/workers clamped to [0,1].
	Utilization float64

	// Kernel events fired, and their wall-clock rate since the first
	// replication.
	Events          uint64
	EventsPerSecond float64
}

// Snapshot copies the current values. Counters are read individually
// (not under one lock), so a snapshot taken mid-run is approximate
// across metrics while each value is exact.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		PointsOwned:          m.sweep.PointsOwned.Value(),
		PointsSimulated:      m.sweep.PointsSimulated.Value(),
		PointsCached:         m.sweep.PointsCached.Value(),
		PointsFailed:         m.sweep.PointsFailed.Value(),
		RowsEmitted:          m.sweep.RowsEmitted.Value(),
		Replications:         m.scen.Replications.Value(),
		ReplicationsInFlight: m.scen.InFlight.Value(),
		Workers:              m.scen.Workers.Value(),
		Events:               m.scen.Events.Value(),
		EventsPerSecond:      m.scen.EventsPerSecond(),
	}
	if done := s.PointsCached + s.PointsSimulated; done > 0 {
		s.CacheHitRate = float64(s.PointsCached) / float64(done)
	}
	if s.Workers > 0 {
		s.Utilization = float64(s.ReplicationsInFlight) / float64(s.Workers)
		if s.Utilization > 1 {
			s.Utilization = 1
		}
	}
	return s
}
