package wlan_test

import (
	"context"
	"fmt"
	"time"

	"repro/wlan"
)

// A Lab ties the whole surface together: one worker pool behind single
// runs, replicated scenarios and parameter sweeps, all cancellable
// through the context and all bit-identical to one-shot execution.
func Example_lab() {
	ctx := context.Background()
	lab := wlan.NewLab(wlan.WithParallelism(2))
	defer lab.Close()

	// One simulation from a Config (either engine).
	res, err := lab.Run(ctx, wlan.Config{
		Topology: wlan.Connected(10),
		Scheme:   wlan.DCF,
		Duration: 3 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("run: delivered frames: %v\n", res.Successes > 0)

	// A replicated declarative scenario with CI aggregation.
	sum, err := lab.RunScenario(ctx, wlan.Scenario{
		Name:     "poisson",
		Topology: wlan.TopologySpec{Kind: wlan.TopoConnected, N: 6},
		Traffic:  []wlan.TrafficSpec{wlan.PoissonTraffic(120)},
		Duration: wlan.Duration(2 * time.Second),
		Seeds:    2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario: %d replications, packets delivered: %v\n",
		sum.Replications, sum.Latency.Packets > 0)

	// A parameter grid, streamed point by point in expansion order.
	grid := &wlan.Grid{
		Name: "demo",
		Base: wlan.Scenario{
			Topology: wlan.TopologySpec{Kind: wlan.TopoConnected},
			Duration: wlan.Duration(time.Second),
		},
		Axes: []wlan.Axis{{Field: wlan.FieldNodes, Values: wlan.Ints(2, 4)}},
	}
	for pt, err := range lab.Sweep(ctx, grid) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("sweep: %s ok: %v\n", pt.Name, pt.Summary.ThroughputMbps.Mean > 0)
	}
	// Output:
	// run: delivered frames: true
	// scenario: 2 replications, packets delivered: true
	// sweep: demo/nodes=2 ok: true
	// sweep: demo/nodes=4 ok: true
}

// The smallest possible run: standard 802.11 in a connected network.
func ExampleRun() {
	res, err := wlan.Run(wlan.Config{
		Topology: wlan.Connected(10),
		Scheme:   wlan.DCF,
		Duration: 5 * time.Second,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered frames: %v, collisions seen: %v\n",
		res.Successes > 0, res.Collisions > 0)
	// Output: delivered frames: true, collisions seen: true
}

// Weighted fairness: stations derive their attempt probabilities from
// the broadcast control variable and their own weights (Lemma 1); the AP
// never learns the weights.
func ExampleRun_weighted() {
	res, err := wlan.Run(wlan.Config{
		Topology: wlan.Connected(4),
		Scheme:   wlan.WTOPCSMA,
		Weights:  []float64{1, 1, 2, 2},
		Duration: 20 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	ratio := res.Stations[2].Throughput / res.Stations[0].Throughput
	fmt.Printf("weight-2 station earns about %.0fx a weight-1 station's throughput\n", ratio)
	// Output: weight-2 station earns about 2x a weight-1 station's throughput
}

// Node churn: the controller re-tracks the optimum as stations arrive.
func ExampleSimulation_SetActiveAt() {
	s, err := wlan.New(wlan.Config{
		Topology: wlan.Connected(20),
		Scheme:   wlan.TORACSMA,
		Duration: 10 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	if err := s.SetActiveAt(0, 5); err != nil { // start with 5 stations
		panic(err)
	}
	if err := s.SetActiveAt(5*time.Second, 20); err != nil { // 15 more arrive
		panic(err)
	}
	res := s.Run(10 * time.Second)
	fmt.Printf("adaptation windows recorded: %v\n", res.ControlSeries.Len() > 0)
	// Output: adaptation windows recorded: true
}
