package wlan_test

import (
	"fmt"
	"time"

	"repro/wlan"
)

// The smallest possible run: standard 802.11 in a connected network.
func ExampleRun() {
	res, err := wlan.Run(wlan.Config{
		Topology: wlan.Connected(10),
		Scheme:   wlan.DCF,
		Duration: 5 * time.Second,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered frames: %v, collisions seen: %v\n",
		res.Successes > 0, res.Collisions > 0)
	// Output: delivered frames: true, collisions seen: true
}

// Weighted fairness: stations derive their attempt probabilities from
// the broadcast control variable and their own weights (Lemma 1); the AP
// never learns the weights.
func ExampleRun_weighted() {
	res, err := wlan.Run(wlan.Config{
		Topology: wlan.Connected(4),
		Scheme:   wlan.WTOPCSMA,
		Weights:  []float64{1, 1, 2, 2},
		Duration: 20 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	ratio := res.Stations[2].Throughput / res.Stations[0].Throughput
	fmt.Printf("weight-2 station earns about %.0fx a weight-1 station's throughput\n", ratio)
	// Output: weight-2 station earns about 2x a weight-1 station's throughput
}

// Node churn: the controller re-tracks the optimum as stations arrive.
func ExampleSimulation_SetActiveAt() {
	s, err := wlan.New(wlan.Config{
		Topology: wlan.Connected(20),
		Scheme:   wlan.TORACSMA,
		Duration: 10 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	if err := s.SetActiveAt(0, 5); err != nil { // start with 5 stations
		panic(err)
	}
	if err := s.SetActiveAt(5*time.Second, 20); err != nil { // 15 more arrive
		panic(err)
	}
	res := s.Run(10 * time.Second)
	fmt.Printf("adaptation windows recorded: %v\n", res.ControlSeries.Len() > 0)
	// Output: adaptation windows recorded: true
}
